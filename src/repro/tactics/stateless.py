"""Stateless-gateway SSE: the paper's concluding research direction.

The conclusion of the paper observes that a cloud-native DataBlinder
wants a *stateless* gateway, but tactics like Sophos and Mitra keep
per-keyword state (token chains, counters) in the trusted zone.  This
tactic implements the trade the conclusion hints at: move all state to
the cloud and pay for it with leakage.

Construction.  Keywords are blinded to a PRF tag; the cloud keeps an
append-only list per tag.  Each entry is ``(salt, payload)`` where the
payload — document id plus add/delete flag — is masked with
``PRG(PRF(k_w, salt))`` under a fresh random salt, so entries are
position-independent and the gateway needs no counter.  Search sends the
tag; the gateway unmasks the returned entries and replays tombstones.

Cost/benefit vs Mitra:

* gateway state: **zero** (vs one counter per keyword) — the gateway can
  be replicated/restarted freely (the ORM-like deployment of §7);
* rounds: identical (one per update, one per search);
* leakage: the cloud sees which (blinded) keyword every update touches
  at *insert time*, i.e. **forward privacy is lost** — updates to a
  previously searched keyword are linkable.  Still class 2
  (*identifiers*): values and ids stay hidden.

``benchmarks/bench_ablation_stateless.py`` quantifies the trade.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.encoding import Value, encode_value
from repro.crypto.primitives.hmac_prf import prf, prg
from repro.crypto.primitives.random import default_random
from repro.errors import TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import (
    CloudTactic,
    GatewayTactic,
    export_ring,
    keyword_key,
    random_doc_id,
)

_ADD = 0
_DELETE = 1
_SALT_SIZE = 16


def _mask(k_w: bytes, salt: bytes, op: int, doc_id: str) -> bytes:
    body = bytes([op]) + doc_id.encode("utf-8")
    pad = prg(prf(k_w, b"pad", salt), len(body), label=b"stateless-pad")
    return bytes(a ^ b for a, b in zip(body, pad))


def _unmask(k_w: bytes, salt: bytes, masked: bytes) -> tuple[int, str]:
    pad = prg(prf(k_w, b"pad", salt), len(masked), label=b"stateless-pad")
    body = bytes(a ^ b for a, b in zip(masked, pad))
    return body[0], body[1:].decode("utf-8")


class StatelessSseGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayDocIDGen,
    spi.GatewayUpdate,
    spi.GatewayDeletion,
    spi.GatewayEqQuery,
    spi.GatewayEqResolution,
):
    """Trusted-zone half: keys only, no per-keyword state."""

    def setup(self) -> None:
        self._master = self.ctx.derive_key("index")
        self.ctx.call("setup")

    def generate_doc_id(self) -> str:
        return random_doc_id()

    def _keyword(self, value: Value) -> bytes:
        return encode_value(value)

    def _tag(self, keyword: bytes) -> bytes:
        return prf(self._master, b"tag", keyword)

    # -- updates ---------------------------------------------------------------

    def _append(self, op: int, doc_id: str, value: Value) -> None:
        keyword = self._keyword(value)
        k_w = keyword_key(self._master, keyword)
        salt = default_random().token_bytes(_SALT_SIZE)
        self.ctx.call(
            "insert",
            tag=self._tag(keyword),
            salt=salt,
            payload=_mask(k_w, salt, op, doc_id),
        )

    def insert(self, doc_id: str, value: Value) -> None:
        self._append(_ADD, doc_id, value)

    def delete(self, doc_id: str, value: Value) -> None:
        self._append(_DELETE, doc_id, value)

    def update(self, doc_id: str, old_value: Value,
               new_value: Value) -> None:
        self.delete(doc_id, old_value)
        self.insert(doc_id, new_value)

    # -- search -------------------------------------------------------------------

    def eq_query(self, value: Value) -> Any:
        keyword = self._keyword(value)
        entries = self.ctx.call("eq_query", tag=self._tag(keyword))
        return {"keyword": keyword, "entries": entries}

    def resolve_eq(self, raw: Any) -> set[str]:
        k_w = keyword_key(self._master, raw["keyword"])
        alive: set[str] = set()
        for salt, masked in raw["entries"]:
            op, doc_id = _unmask(k_w, salt, masked)
            if op == _ADD:
                alive.add(doc_id)
            elif op == _DELETE:
                alive.discard(doc_id)
            else:
                raise TacticError(f"invalid op byte {op}")
        return alive


class StatelessSseCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudUpdate,
    spi.CloudDeletion,
    spi.CloudEqQuery,
):
    """Untrusted-zone half: per-tag append lists.

    The per-tag grouping is exactly the leakage this scheme pays: the
    server links every update of one (blinded) keyword as it arrives.
    """

    def setup(self, **params: Any) -> None:
        self._namespace = self.ctx.state_key(b"entries")

    def _list_key(self, tag: bytes) -> bytes:
        return self._namespace + b"/" + tag

    def insert(self, tag: bytes, salt: bytes, payload: bytes) -> None:
        if not all(isinstance(x, bytes) for x in (tag, salt, payload)):
            raise TacticError("stateless SSE entries are byte blobs")
        counter = self.ctx.kv.counter_increment(self._list_key(tag))
        self.ctx.kv.map_put(
            self._list_key(tag), counter.to_bytes(8, "big"), salt + payload
        )

    # Deletion/update are masked appends, same wire shape as Mitra.
    def update(self, tag: bytes, salt: bytes, payload: bytes) -> None:
        self.insert(tag=tag, salt=salt, payload=payload)

    def delete(self, tag: bytes, salt: bytes, payload: bytes) -> None:
        self.insert(tag=tag, salt=salt, payload=payload)

    def eq_query(self, tag: bytes) -> list[tuple[bytes, bytes]]:
        entries = sorted(
            self.ctx.kv.map_items(self._list_key(tag)),
            key=lambda kv: kv[0],
        )
        return [
            (blob[:_SALT_SIZE], blob[_SALT_SIZE:]) for _, blob in entries
        ]

    # -- shard migration SPI (tag-keyed) ---------------------------------------
    # A whole posting list moves at once, keyed by its tag; append order
    # within the list is preserved so tombstone replay stays correct.

    def _ordered_blobs(self, name: bytes) -> list[bytes]:
        return [
            blob for _, blob in sorted(self.ctx.kv.map_items(name),
                                       key=lambda kv: kv[0])
        ]

    def _clear_list(self, name: bytes) -> None:
        for field, _ in self.ctx.kv.map_items(name):
            self.ctx.kv.map_delete(name, field)
        self.ctx.kv.counter_set(name, 0)

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        prefix = self._namespace + b"/"
        exported = []
        for name in self.ctx.kv.map_names(prefix):
            tag = name[len(prefix):]
            if ring.owner(tag) == origin:
                continue
            exported.append((tag, self._ordered_blobs(name)))
        return exported

    def shard_import(self, entries: list) -> None:
        for tag, blobs in entries:
            name = self._list_key(tag)
            existing = self._ordered_blobs(name)
            seen = set(existing)
            # Random salts make every posting unique, so a retried
            # import chunk dedupes instead of double-appending.
            fresh = [blob for blob in blobs if blob not in seen]
            if not fresh:
                continue
            # Imported postings predate anything the target accepted
            # during the migration window; re-sequence them first so a
            # delete tombstone still lands after its add.
            self._clear_list(name)
            for blob in fresh + existing:
                counter = self.ctx.kv.counter_increment(name)
                self.ctx.kv.map_put(name, counter.to_bytes(8, "big"),
                                    blob)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        prefix = self._namespace + b"/"
        for name in self.ctx.kv.map_names(prefix):
            tag = name[len(prefix):]
            if ring.owner(tag) != origin:
                self._clear_list(name)
