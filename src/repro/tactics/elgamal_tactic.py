"""ElGamal product-aggregate tactic (extension beyond the paper's catalog).

The paper's background section pairs Paillier (additive) with ElGamal
(multiplicative) as the classic partially homomorphic schemes; its Table 2
ships only Paillier.  This tactic demonstrates the crypto-agility claim:
a new scheme slots into the same 3/3 SPI surface as Paillier — Setup,
Insertion, AggFunctionResolution // Setup, Insertion, AggFunction — and
the selector picks it automatically for fields annotated with the
``product`` aggregate.  Values must be positive integers (geometric
aggregation, e.g. compounding factors).
"""

from __future__ import annotations

import secrets
from typing import Any

from repro.crypto import elgamal
from repro.crypto.encoding import Value
from repro.crypto.kernels import workers
from repro.crypto.kernels.modexp import FixedBaseTable
from repro.errors import TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import CloudTactic, GatewayTactic, export_ring

KEY_BITS = 256


class ElGamalGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayAggFunctionResolution,
):
    """Trusted-zone half: encryption and product resolution."""

    def setup(self) -> None:
        self._private = self.ctx.keystore.elgamal_keypair(
            self.ctx.field, self.ctx.tactic, KEY_BITS
        )
        public = self._private.public
        # Fixed-base tables for the two public bases g and h: both
        # exponentiations of an encryption then run windowed.  Exact —
        # unlike the Paillier β-trade, r still ranges over the whole
        # exponent group.
        crypto = self.crypto
        self._tables: tuple[FixedBaseTable, FixedBaseTable] | None = None
        if crypto.precompute:
            q = (public.p - 1) // 2
            self._tables = (
                FixedBaseTable(public.g, public.p, q.bit_length(),
                               crypto.window_bits),
                FixedBaseTable(public.h, public.p, q.bit_length(),
                               crypto.window_bits),
            )
        self.ctx.call("setup", p=public.p, g=public.g, h=public.h)

    @staticmethod
    def _validate(value: Value) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise TacticError(
                "ElGamal product tactic requires positive integer values"
            )

    def _encrypt(self, value: int) -> elgamal.ElGamalCiphertext:
        public = self._private.public
        if self._tables is None:
            return elgamal.encrypt(public, value)
        table_g, table_h = self._tables
        q = (public.p - 1) // 2
        r = secrets.randbelow(q - 1) + 1
        return elgamal.encrypt_with_randomness(
            public, value, table_g.pow(r), table_h.pow(r)
        )

    def insert(self, doc_id: str, value: Value) -> None:
        self._validate(value)
        ciphertext = self._encrypt(value)
        self.ctx.call(
            "insert", doc_id=doc_id, c1=ciphertext.c1, c2=ciphertext.c2
        )

    # -- batch SPI ----------------------------------------------------------------

    def index_many_begin(self, entries: list[tuple[str, Value]]):
        """Begin: submit the randomness batch ``(g^r, h^r)`` to the pool
        (only the public ``p, g, h`` and the count cross the boundary).
        Finish: one modmul folds each message in, then the insert RPCs."""
        public = self._private.public
        for _, value in entries:
            self._validate(value)
        crypto = self.crypto
        future = self.kernels.submit_batch(
            workers.elgamal_randoms, len(entries),
            public.p, public.g, public.h, len(entries),
            crypto.window_bits if crypto.precompute else 0,
        )

        def finish() -> None:
            if future is None:
                ciphertexts = [self._encrypt(value) for _, value in entries]
            else:
                ciphertexts = [
                    elgamal.encrypt_with_randomness(public, value, g_r, h_r)
                    for (_, value), (g_r, h_r) in zip(entries,
                                                      future.result())
                ]
            for (doc_id, _), ciphertext in zip(entries, ciphertexts):
                self.ctx.call("insert", doc_id=doc_id,
                              c1=ciphertext.c1, c2=ciphertext.c2)

        return finish

    def aggregate(self, function: str,
                  doc_ids: list[str] | None = None) -> Value:
        raw = self.ctx.call("aggregate", doc_ids=doc_ids)
        return self.resolve_aggregate(function, raw, raw["count"])

    def resolve_aggregate(self, function: str, raw: Any,
                          count: int) -> Value:
        if function == "count":
            return count
        if function != "product":
            raise TacticError(f"ElGamal cannot resolve aggregate {function!r}")
        if count == 0:
            return None
        ciphertext = elgamal.ElGamalCiphertext(
            self._private.public, raw["c1"], raw["c2"]
        )
        return elgamal.decrypt(self._private, ciphertext)


class ElGamalCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudAggFunction,
):
    """Untrusted-zone half: component-wise blind multiplication."""

    def setup(self, p: int, g: int, h: int) -> None:
        self._public = elgamal.ElGamalPublicKey(p, g, h)
        self._map_name = self.ctx.state_key(b"ct")
        self._element_bytes = (p.bit_length() + 7) // 8

    def insert(self, doc_id: str, c1: int, c2: int) -> None:
        blob = (c1.to_bytes(self._element_bytes, "big")
                + c2.to_bytes(self._element_bytes, "big"))
        self.ctx.kv.map_put(self._map_name, doc_id.encode(), blob)

    def _decode(self, blob: bytes) -> tuple[int, int]:
        return (int.from_bytes(blob[:self._element_bytes], "big"),
                int.from_bytes(blob[self._element_bytes:], "big"))

    def aggregate(self, doc_ids: list[str] | None = None) -> dict:
        if doc_ids is None:
            selected = [
                self._decode(blob)
                for _, blob in self.ctx.kv.map_items(self._map_name)
            ]
        else:
            selected = []
            for doc_id in doc_ids:
                blob = self.ctx.kv.map_get(self._map_name,
                                           doc_id.encode())
                if blob is not None:
                    selected.append(self._decode(blob))
        p = self._public.p
        product_c1, product_c2 = 1, 1
        for c1, c2 in selected:
            product_c1 = product_c1 * c1 % p
            product_c2 = product_c2 * c2 % p
        return {"c1": product_c1, "c2": product_c2, "count": len(selected)}

    def combine(self, parts: list[dict]) -> dict:
        """Merge per-shard partial aggregates component-wise."""
        p = self._public.p
        product_c1, product_c2, count = 1, 1, 0
        for part in parts:
            if not part or part.get("count", 0) == 0:
                continue
            product_c1 = product_c1 * part["c1"] % p
            product_c2 = product_c2 * part["c2"] % p
            count += part["count"]
        return {"c1": product_c1, "c2": product_c2, "count": count}

    # -- shard migration SPI (doc-keyed) ---------------------------------------

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        return [
            (key.decode(), blob)
            for key, blob in self.ctx.kv.map_items(self._map_name)
            if ring.owner(key.decode()) != origin
        ]

    def shard_import(self, entries: list) -> None:
        for doc_id, blob in entries:
            self.ctx.kv.map_put(self._map_name, doc_id.encode(), blob)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        for key, _ in self.ctx.kv.map_items(self._map_name):
            if ring.owner(key.decode()) != origin:
                self.ctx.kv.map_delete(self._map_name, key)
