"""Mitra: forward- and backward-private SSE (Chamani et al., CCS 2018).

Protection class 2 (*identifiers*).  The gateway keeps a per-keyword
counter (the paper's 'Local storage' challenge for this tactic); each
update stores one entry at the pseudorandom address ``PRF(k_w, c)`` whose
payload — document id plus an add/delete flag — is masked with an
independent PRF pad.  Because addresses of future updates are
unpredictable without the counter, inserts leak nothing about past
queries (forward privacy), and because deletions are masked tombstones
resolved only at the gateway, the server never learns which entries
cancelled out (backward privacy of type II).

Search sends the ``c`` addresses; the cloud returns the masked payloads
and the gateway unmasks, replays tombstones and yields the surviving ids.

SPI surface (Table 2 row: 7 gateway / 5 cloud): Setup, Insertion,
DocIDGen, Update, Deletion, EqQuery, EqResolution // Setup, Insertion,
Update, Deletion, EqQuery.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.encoding import Value, encode_value
from repro.crypto.primitives.hmac_prf import prf, prg
from repro.errors import TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import (
    CloudTactic,
    GatewayTactic,
    export_ring,
    keyword_key,
    random_doc_id,
)

_ADD = 0
_DELETE = 1


def _mask_payload(pad_seed: bytes, op: int, doc_id: str) -> bytes:
    body = bytes([op]) + doc_id.encode("utf-8")
    pad = prg(pad_seed, len(body), label=b"mitra-pad")
    return bytes(a ^ b for a, b in zip(body, pad))


def _unmask_payload(pad_seed: bytes, masked: bytes) -> tuple[int, str]:
    pad = prg(pad_seed, len(masked), label=b"mitra-pad")
    body = bytes(a ^ b for a, b in zip(masked, pad))
    return body[0], body[1:].decode("utf-8")


class MitraGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayDocIDGen,
    spi.GatewayUpdate,
    spi.GatewayDeletion,
    spi.GatewayEqQuery,
    spi.GatewayEqResolution,
):
    """Trusted-zone half: counters, trapdoors and tombstone resolution."""

    def setup(self) -> None:
        self._master = self.ctx.derive_key("index")
        self.ctx.call("setup")

    def generate_doc_id(self) -> str:
        return random_doc_id()

    # -- keyword state ---------------------------------------------------------

    def _keyword(self, value: Value) -> bytes:
        return encode_value(value)

    def _counter_key(self, keyword: bytes) -> bytes:
        # Hash the keyword so plaintext values never sit in gateway state.
        return self.ctx.state_key(b"cnt", prf(self._master, b"cnt", keyword))

    def _count(self, keyword: bytes) -> int:
        return self.ctx.local_kv.counter_get(self._counter_key(keyword))

    # -- update protocol ----------------------------------------------------------

    def _append(self, op: int, doc_id: str, value: Value) -> None:
        keyword = self._keyword(value)
        k_w = keyword_key(self._master, keyword)
        count = self.ctx.local_kv.counter_increment(
            self._counter_key(keyword)
        )
        counter_bytes = count.to_bytes(8, "big")
        address = prf(k_w, b"addr", counter_bytes)
        pad_seed = prf(k_w, b"pad", counter_bytes)
        self.ctx.call(
            "insert",
            address=address,
            payload=_mask_payload(pad_seed, op, doc_id),
        )

    def insert(self, doc_id: str, value: Value) -> None:
        self._append(_ADD, doc_id, value)

    def delete(self, doc_id: str, value: Value) -> None:
        self._append(_DELETE, doc_id, value)

    def update(self, doc_id: str, old_value: Value,
               new_value: Value) -> None:
        self.delete(doc_id, old_value)
        self.insert(doc_id, new_value)

    # -- search protocol -------------------------------------------------------------

    def eq_query(self, value: Value) -> Any:
        keyword = self._keyword(value)
        k_w = keyword_key(self._master, keyword)
        count = self._count(keyword)
        addresses = [
            prf(k_w, b"addr", c.to_bytes(8, "big"))
            for c in range(1, count + 1)
        ]
        masked = self.ctx.call("eq_query", addresses=addresses)
        return {"keyword": keyword, "masked": masked}

    def resolve_eq(self, raw: Any) -> set[str]:
        keyword = raw["keyword"]
        k_w = keyword_key(self._master, keyword)
        alive: set[str] = set()
        for index, masked in enumerate(raw["masked"], start=1):
            if masked is None:
                raise TacticError("cloud lost a Mitra index entry")
            pad_seed = prf(k_w, b"pad", index.to_bytes(8, "big"))
            op, doc_id = _unmask_payload(pad_seed, masked)
            if op == _ADD:
                alive.add(doc_id)
            elif op == _DELETE:
                alive.discard(doc_id)
            else:
                raise TacticError(f"invalid Mitra op byte {op}")
        return alive


class MitraCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudUpdate,
    spi.CloudDeletion,
    spi.CloudEqQuery,
):
    """Untrusted-zone half: a flat pseudorandom-address store.

    Adds, deletes and updates are indistinguishable entries; the cloud
    routes them all through the same append path.
    """

    def setup(self, **params: Any) -> None:
        self._map_name = self.ctx.state_key(b"index")

    def insert(self, address: bytes, payload: bytes) -> None:
        if not isinstance(address, bytes) or not isinstance(payload, bytes):
            raise TacticError("Mitra entries are byte blobs")
        self.ctx.kv.map_put(self._map_name, address, payload)

    # Deletion and update are masked appends: same wire shape on purpose.
    def update(self, address: bytes, payload: bytes) -> None:
        self.insert(address=address, payload=payload)

    def delete(self, address: bytes, payload: bytes) -> None:
        self.insert(address=address, payload=payload)

    def eq_query(self, addresses: list[bytes]) -> list[bytes | None]:
        return [
            self.ctx.kv.map_get(self._map_name, address)
            for address in addresses
        ]

    # -- shard migration SPI (address-keyed) -----------------------------------
    # Each address slot lives on exactly one shard; the router's
    # elementwise first-non-None merge reassembles a search.

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        return [
            (address, payload)
            for address, payload in self.ctx.kv.map_items(self._map_name)
            if ring.owner(address) != origin
        ]

    def shard_import(self, entries: list) -> None:
        for address, payload in entries:
            self.ctx.kv.map_put(self._map_name, address, payload)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        for address, _ in self.ctx.kv.map_items(self._map_name):
            if ring.owner(address) != origin:
                self.ctx.kv.map_delete(self._map_name, address)
