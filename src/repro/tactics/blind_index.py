"""Blind-index equality tactic: OPRF tokens with HSM-held keys.

An extension tactic in the spirit of the related work the paper cites
(Ionic's "encrypted search system with an advanced query construction
mechanism based on EC-OPRF"): equality tokens are oblivious-PRF outputs
whose key never leaves the (simulated) HSM.

Why an operator would pick this over DET at the same class (4,
*equalities*): with DET, any party holding the gateway's derived key can
compute tokens for candidate values offline — a stolen gateway image
enables unbounded dictionary attacks.  With the blind index, every token
derivation is a mediated HSM round: the module sees only blinded group
elements (learning nothing about the values), the gateway never holds
the PRF key, and token derivation becomes rate-limitable and auditable
at the HSM.  The cost is one modular exponentiation round trip per
token.

SPI surface: Setup, Insertion, Update, Deletion, EqQuery, EqResolution //
Setup, Insertion, Update, Deletion, EqQuery.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.encoding import Value, encode_value
from repro.crypto.oprf import OprfClient
from repro.errors import TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import CloudTactic, GatewayTactic, export_ring

OPRF_GROUP_BITS = 256


class BlindIndexGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayUpdate,
    spi.GatewayDeletion,
    spi.GatewayEqQuery,
    spi.GatewayEqResolution,
):
    """Trusted-zone half: blinds values, lets the HSM evaluate."""

    def setup(self) -> None:
        label = f"oprf/{self.ctx.application}/{self.ctx.field}"
        self._hsm_label = label
        # The group handle (and with it the hash-to-group subkey state)
        # is derived once here; per-call work is one blind/evaluate/
        # finalize round, and with active crypto kernels the finished
        # tags are memoised per (field, key-version) so repeated
        # eq_query/resolve_eq traffic skips the HSM round entirely.
        group = self.ctx.keystore.hsm.create_oprf_key(
            label, OPRF_GROUP_BITS
        )
        self._client = OprfClient(group)
        self._token_cache = self.kernels.cache()
        self.ctx.call("setup")

    def _token(self, value: Value) -> bytes:
        """One blinded HSM round: value -> OPRF tag (LRU-memoised when
        the crypto kernels are active — the OPRF is deterministic)."""
        cache = self._token_cache
        if cache is None:
            return self._token_cold(value)
        key = encode_value(value)
        token = cache.get(key)
        if token is None:
            token = self._token_cold(value)
            cache.put(key, token)
        return token

    def _token_cold(self, value: Value) -> bytes:
        data = encode_value(value)
        state, blinded = self._client.blind(data)
        evaluated = self.ctx.keystore.hsm.oprf_evaluate(
            self._hsm_label, blinded
        )
        return self._client.finalize(data, state, evaluated)

    # -- batch SPI ----------------------------------------------------------------

    def token(self, value: Value) -> bytes:
        return self._token(value)

    def _tokens_batch(self, values: list[Value]) -> list[bytes]:
        """One multi-element HSM round for a whole batch of values."""
        data = [encode_value(value) for value in values]
        blind = [self._client.blind(item) for item in data]
        evaluated = self.ctx.keystore.hsm.oprf_evaluate_many(
            self._hsm_label, [blinded for _, blinded in blind]
        )
        return [
            self._client.finalize(item, state, output)
            for item, (state, _), output in zip(data, blind, evaluated)
        ]

    def tokens_many(self, values: list[Value]) -> list[bytes]:
        return self.kernels.dedup_map(
            values, self._token_cold, key=encode_value,
            cache=self._token_cache, batch=self._tokens_batch,
        )

    def index_many_begin(self, entries: list[tuple[str, Value]]):
        tags = self.tokens_many([value for _, value in entries])

        def finish() -> None:
            for (doc_id, _), tag in zip(entries, tags):
                self.ctx.call("insert", doc_id=doc_id, tag=tag)

        return finish

    def insert(self, doc_id: str, value: Value) -> None:
        self.ctx.call("insert", doc_id=doc_id, tag=self._token(value))

    def update(self, doc_id: str, old_value: Value,
               new_value: Value) -> None:
        self.ctx.call(
            "update",
            doc_id=doc_id,
            old_tag=self._token(old_value),
            new_tag=self._token(new_value),
        )

    def delete(self, doc_id: str, value: Value) -> None:
        self.ctx.call("delete", doc_id=doc_id, tag=self._token(value))

    def eq_query(self, value: Value) -> Any:
        return self.ctx.call("eq_query", tag=self._token(value))

    def resolve_eq(self, raw: Any) -> set[str]:
        return set(raw)


class BlindIndexCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudUpdate,
    spi.CloudDeletion,
    spi.CloudEqQuery,
):
    """Untrusted-zone half: a tag -> ids index (like DET's shape)."""

    def setup(self, **params: Any) -> None:
        self._namespace = self.ctx.state_key(b"tags")
        # doc_id -> tag reverse map; lets shard migration enumerate the
        # entries of one document without scanning every tag set.
        self._by_doc = self.ctx.state_key(b"by-doc")

    def _tag_set(self, tag: bytes) -> bytes:
        return self._namespace + b"/" + tag

    def insert(self, doc_id: str, tag: bytes) -> None:
        if not isinstance(tag, bytes):
            raise TacticError("blind-index tag must be bytes")
        self.ctx.kv.set_add(self._tag_set(tag), doc_id.encode())
        self.ctx.kv.map_put(self._by_doc, doc_id.encode(), tag)

    def update(self, doc_id: str, old_tag: bytes, new_tag: bytes) -> None:
        self.ctx.kv.set_remove(self._tag_set(old_tag), doc_id.encode())
        self.insert(doc_id, new_tag)

    def delete(self, doc_id: str, tag: bytes) -> None:
        self.ctx.kv.set_remove(self._tag_set(tag), doc_id.encode())
        self.ctx.kv.map_delete(self._by_doc, doc_id.encode())

    def eq_query(self, tag: bytes) -> list[str]:
        return sorted(
            member.decode()
            for member in self.ctx.kv.set_members(self._tag_set(tag))
        )

    # -- shard migration SPI (doc-keyed) ---------------------------------------

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        return [
            (doc_id.decode(), tag)
            for doc_id, tag in self.ctx.kv.map_items(self._by_doc)
            if ring.owner(doc_id.decode()) != origin
        ]

    def shard_import(self, entries: list) -> None:
        for doc_id, tag in entries:
            self.insert(doc_id, tag)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        for doc_id, tag in self.ctx.kv.map_items(self._by_doc):
            decoded = doc_id.decode()
            if ring.owner(decoded) != origin:
                self.delete(decoded, tag)
