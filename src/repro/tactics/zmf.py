"""Matryoshka-filter machinery for BIEX-ZMF (Kamara–Moataz, Eurocrypt 2017).

BIEX-ZMF trades the read-efficient pairwise multimaps of BIEX-2Lev for a
space-efficient filter encoding of the same co-occurrence relation.  We
realise the filter as a *counting Bloom filter* whose probe positions are
PRF-derived from ``(pair_key, doc_tag)`` — the server can test membership
when handed the pair key at query time, but learns nothing from the bit
array beforehand.  Counting (rather than plain) cells make deletions
possible, mirroring the dynamic variant.

False positives are inherent to the filter encoding; the middleware's
gateway-side result verification removes them, and the ablation benchmark
``benchmarks/bench_ablation_biex.py`` measures the space/read trade-off
against BIEX-2Lev.
"""

from __future__ import annotations

import math

from repro.crypto.primitives.hmac_prf import prf
from repro.errors import TacticError
from repro.stores.kv import KeyValueStore

DEFAULT_CELLS = 1 << 18  # 262,144 cells
DEFAULT_PROBES = 7


def filter_parameters(expected_items: int,
                      false_positive_rate: float = 1e-6
                      ) -> tuple[int, int]:
    """Optimal (cells, probes) for an expected load and FP target."""
    if expected_items <= 0:
        raise TacticError("expected_items must be positive")
    if not 0 < false_positive_rate < 1:
        raise TacticError("false_positive_rate must be in (0, 1)")
    cells = math.ceil(
        -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
    )
    probes = max(1, round(cells / expected_items * math.log(2)))
    return cells, probes


def probe_positions(pair_key: bytes, tag: bytes, cells: int,
                    probes: int) -> list[int]:
    """The PRF-derived cell indices for one (pair, document-tag) element."""
    positions = []
    for index in range(probes):
        digest = prf(pair_key, b"probe", index.to_bytes(4, "big"), tag)
        positions.append(int.from_bytes(digest[:8], "big") % cells)
    return positions


class CountingBloomFilter:
    """A counting Bloom filter persisted in the cloud KV store.

    Cells are 16-bit saturating counters stored as one contiguous byte
    string per shard of 4096 cells, so incremental updates touch a single
    KV entry rather than rewriting the whole array.
    """

    SHARD_CELLS = 4096

    def __init__(self, kv: KeyValueStore, namespace: bytes,
                 cells: int = DEFAULT_CELLS, probes: int = DEFAULT_PROBES):
        if cells <= 0 or probes <= 0:
            raise TacticError("filter needs positive cells and probes")
        self._kv = kv
        self._namespace = namespace
        self.cells = cells
        self.probes = probes

    def _shard_key(self, shard: int) -> bytes:
        return self._namespace + b"/shard/" + shard.to_bytes(4, "big")

    def _load_shard(self, shard: int) -> bytearray:
        blob = self._kv.get(self._shard_key(shard))
        if blob is None:
            return bytearray(2 * self.SHARD_CELLS)
        return bytearray(blob)

    def _adjust(self, position: int, delta: int) -> None:
        shard, offset = divmod(position, self.SHARD_CELLS)
        data = self._load_shard(shard)
        index = 2 * offset
        value = int.from_bytes(data[index:index + 2], "big") + delta
        value = min(max(value, 0), 0xFFFF)
        data[index:index + 2] = value.to_bytes(2, "big")
        self._kv.put(self._shard_key(shard), bytes(data))

    def _read(self, position: int) -> int:
        shard, offset = divmod(position, self.SHARD_CELLS)
        data = self._load_shard(shard)
        index = 2 * offset
        return int.from_bytes(data[index:index + 2], "big")

    # -- element operations ---------------------------------------------------

    def add(self, pair_key: bytes, tag: bytes) -> None:
        for position in probe_positions(pair_key, tag, self.cells,
                                        self.probes):
            self._adjust(position, +1)

    def remove(self, pair_key: bytes, tag: bytes) -> None:
        for position in probe_positions(pair_key, tag, self.cells,
                                        self.probes):
            self._adjust(position, -1)

    def contains(self, pair_key: bytes, tag: bytes) -> bool:
        return all(
            self._read(position) > 0
            for position in probe_positions(pair_key, tag, self.cells,
                                            self.probes)
        )

    def size_in_bytes(self) -> int:
        """Bytes occupied by materialised shards (space-efficiency metric)."""
        total = 0
        shard_count = (self.cells + self.SHARD_CELLS - 1) // self.SHARD_CELLS
        for shard in range(shard_count):
            blob = self._kv.get(self._shard_key(shard))
            if blob is not None:
                total += len(blob)
        return total
