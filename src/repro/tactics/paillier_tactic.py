"""Paillier aggregate tactic: blind sums and averages in the cloud.

No protection class / leakage row in Table 2 ('-'): this tactic answers no
search queries, it only stores additively homomorphic ciphertexts and
multiplies them on demand.  The cloud computes ``E(sum)`` as the modular
product of the selected ciphertexts; the gateway's
``AggFunctionResolution`` decrypts and — for averages — divides by the
count (the paper's example: *the average heart rate of a patient*).

Table 2's 'Key management' challenge applies: the Paillier private key
must stay in the trusted zone; only ``n`` crosses to the cloud at setup.

SPI surface (Table 2 rows Sum/Average: 3 gateway / 3 cloud): Setup,
Insertion, AggFunctionResolution // Setup, Insertion, AggFunction.
"""

from __future__ import annotations

import os
from typing import Any

from repro.crypto import paillier
from repro.crypto.encoding import Value
from repro.crypto.kernels import workers
from repro.errors import TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import CloudTactic, GatewayTactic, export_ring

KEY_BITS = 1024
FIXED_POINT_SCALE = 6
#: Obfuscator masks precomputed in the background per gateway instance;
#: set DATABLINDER_PAILLIER_POOL=0 to force inline mask computation.
OBFUSCATOR_POOL_ENV = "DATABLINDER_PAILLIER_POOL"
DEFAULT_OBFUSCATOR_POOL = 8


class PaillierGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayAggFunctionResolution,
):
    """Trusted-zone half: encryption and aggregate resolution."""

    def setup(self) -> None:
        self._private = self.ctx.keystore.paillier_keypair(
            self.ctx.field, self.ctx.tactic, KEY_BITS
        )
        self._codec = paillier.FixedPointCodec(FIXED_POINT_SCALE)
        raw_size = os.environ.get(
            OBFUSCATOR_POOL_ENV, str(DEFAULT_OBFUSCATOR_POOL)
        )
        try:
            pool_size = int(raw_size)
        except ValueError:
            raise TacticError(
                f"{OBFUSCATOR_POOL_ENV} must be an integer, "
                f"got {raw_size!r}"
            ) from None
        #: Fixed-base mask generation (CryptoConfig.precompute): one cold
        #: mask β at setup, fresh masks as β^k through a windowed table —
        #: ~7x fewer modmuls than a cold r^n exponentiation.
        crypto = self.crypto
        self._fixed_base = (
            paillier.FixedBaseObfuscator(self._private.public,
                                         crypto.window_bits)
            if crypto.precompute else None
        )
        #: Masks (r^n mod n^2) precompute on a background thread, so the
        #: write path usually pays one modmul instead of a 2048-bit
        #: modular exponentiation.  The fixed-base generator, when
        #: enabled, becomes the pool's refill source.
        self._obfuscators = (
            paillier.ObfuscatorPool(
                self._private.public, size=pool_size,
                source=(self._fixed_base.mask
                        if self._fixed_base is not None else None),
            )
            if pool_size > 0 else None
        )
        self.ctx.call("setup", n=self._private.public.n)

    def _encode(self, value: Value) -> int:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TacticError(
                f"Paillier protects numeric fields only, got "
                f"{type(value).__name__}"
            )
        return self._codec.encode(value)

    def _encrypt(self, encoded: int) -> paillier.Ciphertext:
        if self._obfuscators is not None:
            return self._obfuscators.encrypt(encoded)
        if self._fixed_base is not None:
            return self._fixed_base.encrypt(encoded)
        return paillier.encrypt(self._private.public, encoded)

    def insert(self, doc_id: str, value: Value) -> None:
        ciphertext = self._encrypt(self._encode(value))
        self.ctx.call("insert", doc_id=doc_id, ciphertext=ciphertext.value)

    # -- batch SPI ----------------------------------------------------------------

    def index_many_begin(self, entries: list[tuple[str, Value]]):
        """Begin: encode plaintexts and submit the mask batch to the
        process pool (only ``n``, the count and the window width cross
        the boundary).  Finish: fold each plaintext in with one modmul
        and emit the insert RPCs."""
        public = self._private.public
        encoded = [self._encode(value) for _, value in entries]
        crypto = self.crypto
        future = self.kernels.submit_batch(
            workers.paillier_masks, len(entries),
            public.n, len(entries),
            crypto.window_bits if crypto.precompute else 0,
        )

        def finish() -> None:
            if future is None:
                ciphertexts = [self._encrypt(message) for message in encoded]
            else:
                ciphertexts = [
                    paillier.encrypt_with_mask(public, message, mask)
                    for message, mask in zip(encoded, future.result())
                ]
            for (doc_id, _), ciphertext in zip(entries, ciphertexts):
                self.ctx.call("insert", doc_id=doc_id,
                              ciphertext=ciphertext.value)

        return finish

    # -- aggregate protocol -------------------------------------------------------

    def aggregate(self, function: str,
                  doc_ids: list[str] | None = None) -> Value:
        """Run the full protocol: blind cloud evaluation + resolution."""
        raw = self.ctx.call("aggregate", doc_ids=doc_ids)
        return self.resolve_aggregate(function, raw, raw["count"])

    def resolve_aggregate(self, function: str, raw: Any,
                          count: int) -> Value:
        if function == "count":
            return count
        if count == 0:
            return None
        encrypted_sum = paillier.Ciphertext(self._private.public, raw["ct"])
        decoded_sum = paillier.decrypt(self._private, encrypted_sum)
        if function == "sum":
            return self._codec.decode(decoded_sum)
        if function == "avg":
            return self._codec.decode_mean(decoded_sum, count)
        raise TacticError(f"Paillier cannot resolve aggregate {function!r}")


class PaillierCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudAggFunction,
):
    """Untrusted-zone half: ciphertext storage and blind multiplication."""

    def setup(self, n: int) -> None:
        self._public = paillier.PaillierPublicKey(n)
        self._map_name = self.ctx.state_key(b"ct")

    def insert(self, doc_id: str, ciphertext: int) -> None:
        if not isinstance(ciphertext, int):
            raise TacticError("Paillier ciphertext must be an integer")
        length = (ciphertext.bit_length() + 7) // 8 or 1
        self.ctx.kv.map_put(
            self._map_name, doc_id.encode(),
            ciphertext.to_bytes(length, "big"),
        )

    def _get(self, doc_id: str) -> int | None:
        blob = self.ctx.kv.map_get(self._map_name, doc_id.encode())
        return None if blob is None else int.from_bytes(blob, "big")

    def aggregate(self, doc_ids: list[str] | None = None) -> dict:
        """Homomorphically sum the selected values.

        ``doc_ids`` of None aggregates everything stored; unknown ids are
        skipped (they may have been deleted from the document store).
        """
        if doc_ids is None:
            selected = [
                int.from_bytes(blob, "big")
                for _, blob in self.ctx.kv.map_items(self._map_name)
            ]
        else:
            selected = [
                ciphertext for ciphertext in
                (self._get(d) for d in doc_ids)
                if ciphertext is not None
            ]
        n_squared = self._public.n_squared
        product = 1
        for ciphertext in selected:
            product = product * ciphertext % n_squared
        return {"ct": product, "count": len(selected)}

    def combine(self, parts: list[dict]) -> dict:
        """Merge per-shard partial aggregates: E(a)·E(b) = E(a+b)."""
        n_squared = self._public.n_squared
        product, count = 1, 0
        for part in parts:
            if not part or part.get("count", 0) == 0:
                continue
            product = product * part["ct"] % n_squared
            count += part["count"]
        return {"ct": product, "count": count}

    # -- shard migration SPI (doc-keyed) ---------------------------------------

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        return [
            (key.decode(), int.from_bytes(blob, "big"))
            for key, blob in self.ctx.kv.map_items(self._map_name)
            if ring.owner(key.decode()) != origin
        ]

    def shard_import(self, entries: list) -> None:
        for doc_id, ciphertext in entries:
            self.insert(doc_id, ciphertext)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        for key, _ in self.ctx.kv.map_items(self._map_name):
            if ring.owner(key.decode()) != origin:
                self.ctx.kv.map_delete(self._map_name, key)
