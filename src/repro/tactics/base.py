"""Shared machinery for tactic implementations.

Tactics are distributed protocols: a gateway half (trusted zone, holds
keys) and a cloud half (untrusted zone, holds encrypted structures).  Both
halves receive their dependency context (§4.2 commonalities) at
construction.  This module adds the pieces nearly every tactic needs:

* :class:`GatewayTactic` / :class:`CloudTactic` — context-holding bases,
  including the gateway-side **batch SPI** (``seal_many`` /
  ``tokens_many`` / ``index_many``): default implementations loop over
  the per-value protocol methods, so every tactic is batch-callable,
  while the hot tactics override them with vectorised kernels
  (dedup/LRU token maps, pooled big-int batches, fixed-base tables).
  ``index_many_begin`` splits a batch insertion into a *begin* phase
  (crypto: compute or submit) and a *finish* callable (network: emit the
  index RPCs), which is what lets the plan engine overlap kernel
  execution with batched network flushes.
* :class:`IdCipher` — encryption of document identifiers stored inside
  secure indexes (AEAD, so index values are IND-CPA blobs).
* :func:`canonical_term` — the ``field=value`` keyword encoding used by
  the SSE tactics, built on the canonical value codec.
* :func:`random_doc_id` — the DocIDGen implementation shared by tactics
  that generate unlinkable identifiers.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.crypto.encoding import Value, encode_value
from repro.crypto.kernels.config import CryptoConfig
from repro.crypto.kernels.executor import CryptoExecutor, inline_executor
from repro.crypto.primitives.hmac_prf import prf
from repro.crypto.primitives.random import default_random
from repro.crypto.symmetric import Aead
from repro.errors import TacticError
from repro.shard.ring import HashRing, spec_ring
from repro.spi.context import CloudTacticContext, GatewayTacticContext


class GatewayTactic:
    """Base for gateway-side tactic halves."""

    def __init__(self, ctx: GatewayTacticContext):
        self.ctx = ctx

    # -- crypto kernel access ----------------------------------------------------

    @property
    def kernels(self) -> CryptoExecutor:
        """The runtime's shared kernel dispatcher (inline fallback for
        bare harnesses constructed without one)."""
        kernels = getattr(self.ctx, "kernels", None)
        return kernels if kernels is not None else inline_executor()

    @property
    def crypto(self) -> CryptoConfig:
        return self.kernels.config

    # -- batch SPI ---------------------------------------------------------------
    # Default implementations loop over the per-value protocol methods,
    # so the batch surface exists on every tactic; with an inactive
    # CryptoConfig the overrides below degrade to these same loops.

    def token(self, value: Value) -> Any:
        """The single-value search-token/code hook behind ``tokens_many``.

        Only meaningful for tactics whose equality/range protocol is
        driven by a deterministic per-value token (DET seals,
        blind-index tags, OPE/ORE codes); stateful-protocol tactics
        (Sophos, Mitra) have no such surface.
        """
        raise TacticError(
            f"{type(self).__name__} exposes no token surface"
        )

    def seal_many(self, values: list[Value]) -> list[bytes]:
        """Batch SecureEnc: one sealed blob per value."""
        return [self.seal(value) for value in values]  # type: ignore[attr-defined]

    def tokens_many(self, values: list[Value]) -> list[Any]:
        """Batch token derivation: one token per value, order-preserving."""
        return [self.token(value) for value in values]

    def index_many(self, entries: list[tuple[str, Value]]) -> None:
        """Batch Insertion over ``(doc_id, value)`` pairs."""
        self.index_many_begin(entries)()

    def index_many_begin(
        self, entries: list[tuple[str, Value]]
    ) -> Callable[[], None]:
        """Start a batch insertion; the returned callable completes it.

        The *begin* phase performs (or submits to the process pool) the
        plaintext-dependent crypto; calling the returned *finish* emits
        the index RPCs.  The engine begins every field of a bulk write
        first — pooled batches then progress in the background while
        inline fields compute — and finishes them in order into one
        batch-collector scope.  The default keeps the seed per-entry
        protocol loop, entirely in finish.
        """
        def finish() -> None:
            for doc_id, value in entries:
                self.insert(doc_id, value)  # type: ignore[attr-defined]

        return finish


class CloudTactic:
    """Base for cloud-side tactic halves.

    Provides the *generic* half of the shard-migration SPI: the whole
    key namespace of this tactic instance relocates via
    ``shard_dump``/``shard_load``/``shard_drop``.  Pinned tactics (BIEX)
    rely on exactly this; entry-keyed tactics additionally implement
    ``shard_export``/``shard_import``/``shard_evict`` so only the
    entries whose ring owner changed have to move.
    """

    def __init__(self, ctx: CloudTacticContext):
        self.ctx = ctx

    def shard_dump(self) -> dict[str, Any]:
        """Everything this instance stores, as a wire-shippable blob."""
        return self.ctx.kv.namespace_dump(self.ctx.state_key(b""))

    def shard_load(self, dump: dict[str, Any]) -> None:
        self.ctx.kv.namespace_load(dump)

    def shard_drop(self) -> int:
        return self.ctx.kv.namespace_drop(self.ctx.state_key(b""))

    def state_digest(self) -> str:
        """Order-independent digest of this instance's secure-index state.

        The integrity subsystem's tactic SPI: a hex commitment over the
        same ``shard_dump`` enumeration the migration SPI ships, so the
        digest is stable across resharding and restarts.  Tactics with
        volatile caches outside their kv namespace need no override —
        only durable index state is committed.
        """
        from repro.integrity.tracker import digest_of_namespace_dump

        return digest_of_namespace_dump(self.shard_dump())


def export_ring(spec: dict[str, Any]) -> tuple[HashRing, str | None]:
    """Rebuild ``(ring, origin)`` for a ``shard_export``/``shard_evict``
    ownership check.

    An entry leaves ``origin`` when ``ring.owner(key) != origin`` — which
    covers both directions: on a node *join* the origin is still a ring
    member and sheds ~1/N of its keys; on a *leave* the origin is absent
    from the new ring, so every entry tests foreign and drains.
    """
    return spec_ring(spec)


class IdCipher:
    """Encrypts/decrypts document ids stored in secure indexes."""

    def __init__(self, key: bytes):
        self._aead = Aead(key[:16])

    def seal(self, doc_id: str) -> bytes:
        return self._aead.encrypt(doc_id.encode("utf-8"))

    def open(self, blob: bytes) -> str:
        return self._aead.decrypt(blob).decode("utf-8")


def canonical_term(field: str, value: Value) -> bytes:
    """The keyword bytes for a ``field == value`` term."""
    return field.encode("utf-8") + b"\x00" + encode_value(value)


def keyword_key(master: bytes, term: bytes, purpose: bytes = b"kw") -> bytes:
    """Per-keyword subkey derivation used by the SSE tactics."""
    return prf(master, purpose, term)


def random_doc_id() -> str:
    """Generate an unlinkable 128-bit document identifier."""
    return default_random().token_bytes(16).hex()
