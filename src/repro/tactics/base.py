"""Shared machinery for tactic implementations.

Tactics are distributed protocols: a gateway half (trusted zone, holds
keys) and a cloud half (untrusted zone, holds encrypted structures).  Both
halves receive their dependency context (§4.2 commonalities) at
construction.  This module adds the pieces nearly every tactic needs:

* :class:`GatewayTactic` / :class:`CloudTactic` — context-holding bases.
* :class:`IdCipher` — encryption of document identifiers stored inside
  secure indexes (AEAD, so index values are IND-CPA blobs).
* :func:`canonical_term` — the ``field=value`` keyword encoding used by
  the SSE tactics, built on the canonical value codec.
* :func:`random_doc_id` — the DocIDGen implementation shared by tactics
  that generate unlinkable identifiers.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.encoding import Value, encode_value
from repro.crypto.primitives.hmac_prf import prf
from repro.crypto.primitives.random import default_random
from repro.crypto.symmetric import Aead
from repro.shard.ring import HashRing, spec_ring
from repro.spi.context import CloudTacticContext, GatewayTacticContext


class GatewayTactic:
    """Base for gateway-side tactic halves."""

    def __init__(self, ctx: GatewayTacticContext):
        self.ctx = ctx


class CloudTactic:
    """Base for cloud-side tactic halves.

    Provides the *generic* half of the shard-migration SPI: the whole
    key namespace of this tactic instance relocates via
    ``shard_dump``/``shard_load``/``shard_drop``.  Pinned tactics (BIEX)
    rely on exactly this; entry-keyed tactics additionally implement
    ``shard_export``/``shard_import``/``shard_evict`` so only the
    entries whose ring owner changed have to move.
    """

    def __init__(self, ctx: CloudTacticContext):
        self.ctx = ctx

    def shard_dump(self) -> dict[str, Any]:
        """Everything this instance stores, as a wire-shippable blob."""
        return self.ctx.kv.namespace_dump(self.ctx.state_key(b""))

    def shard_load(self, dump: dict[str, Any]) -> None:
        self.ctx.kv.namespace_load(dump)

    def shard_drop(self) -> int:
        return self.ctx.kv.namespace_drop(self.ctx.state_key(b""))


def export_ring(spec: dict[str, Any]) -> tuple[HashRing, str | None]:
    """Rebuild ``(ring, origin)`` for a ``shard_export``/``shard_evict``
    ownership check.

    An entry leaves ``origin`` when ``ring.owner(key) != origin`` — which
    covers both directions: on a node *join* the origin is still a ring
    member and sheds ~1/N of its keys; on a *leave* the origin is absent
    from the new ring, so every entry tests foreign and drains.
    """
    return spec_ring(spec)


class IdCipher:
    """Encrypts/decrypts document ids stored in secure indexes."""

    def __init__(self, key: bytes):
        self._aead = Aead(key[:16])

    def seal(self, doc_id: str) -> bytes:
        return self._aead.encrypt(doc_id.encode("utf-8"))

    def open(self, blob: bytes) -> str:
        return self._aead.decrypt(blob).decode("utf-8")


def canonical_term(field: str, value: Value) -> bytes:
    """The keyword bytes for a ``field == value`` term."""
    return field.encode("utf-8") + b"\x00" + encode_value(value)


def keyword_key(master: bytes, term: bytes, purpose: bytes = b"kw") -> bytes:
    """Per-keyword subkey derivation used by the SSE tactics."""
    return prf(master, purpose, term)


def random_doc_id() -> str:
    """Generate an unlinkable 128-bit document identifier."""
    return default_random().token_bytes(16).hex()
