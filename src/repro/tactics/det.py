"""DET: deterministic encryption, protection class 4 (*equalities*).

Equal plaintexts map to equal ciphertexts (SIV-style AES-GCM with a
PRF-derived nonce), so the ciphertext itself is an equality-search token
the cloud can index directly — sub-linear search with no protocol state,
which is why the paper's benchmark uses DET for five of its eight tactic
instances.  The cost is leaking which documents share a value even before
any query runs (snapshot adversary).

SPI surface (Table 2 row: 9 gateway / 6 cloud): Setup, Insertion,
DocIDGen, SecureEnc, Update, Retrieval, Deletion, EqQuery, EqResolution //
Setup, Insertion, Update, Retrieval, Deletion, EqQuery.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.encoding import Value, encode_value
from repro.crypto.symmetric import Deterministic, open_value, seal_value
from repro.errors import DocumentNotFound, TacticError
from repro.spi import interfaces as spi
from repro.tactics.base import (
    CloudTactic,
    GatewayTactic,
    export_ring,
    random_doc_id,
)


class DetGateway(
    GatewayTactic,
    spi.GatewaySetup,
    spi.GatewayInsertion,
    spi.GatewayDocIDGen,
    spi.GatewaySecureEnc,
    spi.GatewayUpdate,
    spi.GatewayRetrieval,
    spi.GatewayDeletion,
    spi.GatewayEqQuery,
    spi.GatewayEqResolution,
):
    """Trusted-zone half of the DET tactic."""

    def setup(self) -> None:
        # Subkey derivation happens once here (the Deterministic cipher
        # HKDFs its enc/mac subkeys at construction), and with active
        # crypto kernels the sealed tokens themselves are memoised — so
        # the eq_query/resolve_eq path re-derives nothing per call.
        self._det = Deterministic(self.ctx.derive_key("value"))
        self._token_cache = self.kernels.cache()
        self.ctx.call("setup")

    # -- SecureEnc / DocIDGen ----------------------------------------------------

    def seal(self, value: Value) -> bytes:
        cache = self._token_cache
        if cache is not None:
            key = encode_value(value)
            token = cache.get(key)
            if token is None:
                token = seal_value(self._det, value)
                cache.put(key, token)
            return token
        return seal_value(self._det, value)

    def open(self, blob: bytes) -> Value:
        return open_value(self._det, blob)

    def generate_doc_id(self) -> str:
        return random_doc_id()

    # -- batch SPI ----------------------------------------------------------------
    # DET seals are deterministic, so a batch costs one AES-SIV pass per
    # *distinct* value (dedup + LRU via the kernel dispatcher).

    def token(self, value: Value) -> bytes:
        return self.seal(value)

    def tokens_many(self, values: list[Value]) -> list[bytes]:
        return self.kernels.dedup_map(
            values, lambda v: seal_value(self._det, v),
            key=encode_value, cache=self._token_cache,
        )

    def seal_many(self, values: list[Value]) -> list[bytes]:
        return self.tokens_many(values)

    def index_many_begin(self, entries: list[tuple[str, Value]]):
        tokens = self.tokens_many([value for _, value in entries])

        def finish() -> None:
            for (doc_id, _), token in zip(entries, tokens):
                self.ctx.call("insert", doc_id=doc_id, token=token)

        return finish

    # -- CRUD ----------------------------------------------------------------------

    def insert(self, doc_id: str, value: Value) -> None:
        self.ctx.call("insert", doc_id=doc_id, token=self.seal(value))

    def update(self, doc_id: str, old_value: Value,
               new_value: Value) -> None:
        self.ctx.call(
            "update",
            doc_id=doc_id,
            old_token=self.seal(old_value),
            new_token=self.seal(new_value),
        )

    def delete(self, doc_id: str, value: Value) -> None:
        self.ctx.call("delete", doc_id=doc_id, token=self.seal(value))

    def retrieve(self, doc_id: str) -> Value:
        token = self.ctx.call("retrieve", doc_id=doc_id)
        if token is None:
            raise DocumentNotFound(doc_id)
        return self.open(token)

    # -- Equality search --------------------------------------------------------------

    def eq_query(self, value: Value) -> Any:
        return self.ctx.call("eq_query", token=self.seal(value))

    def resolve_eq(self, raw: Any) -> set[str]:
        return set(raw)


class DetCloud(
    CloudTactic,
    spi.CloudSetup,
    spi.CloudInsertion,
    spi.CloudUpdate,
    spi.CloudRetrieval,
    spi.CloudDeletion,
    spi.CloudEqQuery,
):
    """Untrusted-zone half: a token -> ids inverted index.

    Two KV structures: a set per token holding matching document ids, and
    a map doc_id -> token so updates and deletes need no client round
    trip for the old token.
    """

    def setup(self, **params: Any) -> None:
        self._by_doc = self.ctx.state_key(b"by-doc")

    def _token_set(self, token: bytes) -> bytes:
        return self.ctx.state_key(b"token", token)

    def insert(self, doc_id: str, token: bytes) -> None:
        if not isinstance(token, bytes):
            raise TacticError("DET insert expects a token blob")
        self.ctx.kv.set_add(self._token_set(token), doc_id.encode())
        self.ctx.kv.map_put(self._by_doc, doc_id.encode(), token)

    def update(self, doc_id: str, old_token: bytes,
               new_token: bytes) -> None:
        self.ctx.kv.set_remove(self._token_set(old_token), doc_id.encode())
        self.insert(doc_id, new_token)

    def delete(self, doc_id: str, token: bytes) -> None:
        self.ctx.kv.set_remove(self._token_set(token), doc_id.encode())
        self.ctx.kv.map_delete(self._by_doc, doc_id.encode())

    def retrieve(self, doc_id: str) -> bytes | None:
        return self.ctx.kv.map_get(self._by_doc, doc_id.encode())

    def eq_query(self, token: bytes) -> list[str]:
        return sorted(
            member.decode()
            for member in self.ctx.kv.set_members(self._token_set(token))
        )

    # -- shard migration SPI (doc-keyed) ---------------------------------------

    def shard_export(self, spec: dict[str, Any]) -> list:
        ring, origin = export_ring(spec)
        return [
            (doc_id.decode(), token)
            for doc_id, token in self.ctx.kv.map_items(self._by_doc)
            if ring.owner(doc_id.decode()) != origin
        ]

    def shard_import(self, entries: list) -> None:
        for doc_id, token in entries:
            self.insert(doc_id, token)

    def shard_evict(self, spec: dict[str, Any]) -> None:
        ring, origin = export_ring(spec)
        for doc_id, token in self.ctx.kv.map_items(self._by_doc):
            decoded = doc_id.decode()
            if ring.owner(decoded) != origin:
                self.delete(decoded, token)
