"""Exception hierarchy for the DataBlinder reproduction.

All library-raised exceptions derive from :class:`DataBlinderError` so that
applications can catch middleware failures with a single ``except`` clause
while still distinguishing subsystem-specific failures.
"""

from __future__ import annotations


class DataBlinderError(Exception):
    """Base class of every exception raised by this library."""


class CryptoError(DataBlinderError):
    """A cryptographic operation failed (bad key, bad parameters, ...)."""


class IntegrityError(CryptoError):
    """Authenticated decryption failed: the ciphertext was tampered with.

    The integrity subsystem (:mod:`repro.integrity`) raises the same
    type when a Merkle inclusion proof or state root does not match what
    the gateway ledger expects: in both cases the untrusted zone served
    bytes that differ from what was written.
    """


class StaleStateError(IntegrityError):
    """The untrusted zone served valid-but-old state (a rollback).

    The bytes verify against *a* root the gateway once accepted, but the
    freshness ledger has since advanced past it — a replayed snapshot,
    not random corruption.  Subclasses :class:`IntegrityError` so one
    ``except IntegrityError`` clause catches both tampering and
    rollback while callers that care can still tell them apart.
    """


class KeyManagementError(DataBlinderError):
    """A key could not be created, derived, wrapped or resolved."""


class StoreError(DataBlinderError):
    """A storage backend rejected an operation."""


class DocumentNotFound(StoreError):
    """A document id did not resolve to a stored document."""


class TransportError(DataBlinderError):
    """A message could not be delivered between gateway and cloud."""


class TransportFault(TransportError):
    """A delivery-level failure: dropped frame, lost connection, corrupt
    frame.  The request may or may not have reached the cloud, so a
    retry is only safe when the request carries an idempotency key (see
    :mod:`repro.net.resilience`)."""


class RetryExhausted(TransportError):
    """Every retry attempt of a call failed with a transport fault.

    Carries how many attempts were made and the last underlying error,
    so operators can distinguish a flaky link (few attempts, varied
    faults) from a dead endpoint (all attempts, same fault).
    """

    def __init__(self, attempts: int, last_error: Exception):
        super().__init__(
            f"call failed after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


class DeadlineExceeded(TransportError):
    """A call's per-call deadline elapsed before a retry could succeed."""


class CircuitOpenError(TransportError):
    """The endpoint's circuit breaker is open: calls fail fast without
    touching the wire until the breaker's reset timeout elapses."""


class RemoteError(TransportError):
    """The remote endpoint raised while servicing an RPC.

    Carries the remote exception type name and message so the caller can
    log a faithful trace without unpickling arbitrary remote state.
    """

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


class GatewayOverloadError(DataBlinderError):
    """The gateway front door refused an operation before execution.

    Subclasses say why; all of them mean the operation never touched
    tactic state or the wire, so it is always safe to retry later.
    """


class RateLimitExceeded(GatewayOverloadError):
    """A principal exhausted its token bucket at the service tier.

    Carries the principal and the seconds until a token accrues, so
    callers can implement honest backoff instead of hammering.
    """

    def __init__(self, principal: str, retry_after_s: float):
        super().__init__(
            f"rate limit exceeded for {principal!r}; "
            f"retry after {retry_after_s:.3f}s"
        )
        self.principal = principal
        self.retry_after_s = retry_after_s


class AdmissionRejected(GatewayOverloadError):
    """The async gateway runtime's admission queue is at capacity."""


class SchemaError(DataBlinderError):
    """A document schema or field annotation is invalid."""


class SchemaValidationError(SchemaError):
    """A document does not conform to its configured schema."""


class PolicyError(DataBlinderError):
    """A data protection policy is inconsistent or violated."""


class SelectionError(PolicyError):
    """No registered tactic satisfies a field's protection annotation."""


class QueryError(DataBlinderError):
    """A query is malformed or not supported by the selected tactics."""


class UnsupportedOperation(QueryError):
    """The field's annotation does not allow the requested operation."""


class TacticError(DataBlinderError):
    """A data protection tactic failed while executing its protocol."""


class RegistryError(DataBlinderError):
    """Tactic registration or SPI lookup failed."""
