"""Gateway-side RPC batching: coalescing cloud writes into one frame.

The executor's write paths fan out over every protected field of a
document — one ``insert``/``update``/``delete`` per (field, tactic)
cloud half plus the document-store write.  Unbatched, each of those is a
blocking round trip across the gateway/cloud link; a 5-protected-field
insert pays ~6 sequential latency charges.  :class:`BatchCollector`
wraps the deployment's transport so that, inside a *collection scope*,
fire-and-forget writes are enqueued instead of shipped, and the whole
queue crosses the wire as **one** batch frame
(:meth:`repro.net.transport.Transport.call_batch`) when the scope
closes.

Semantics inside a scope:

* *Deferrable* calls (index writes whose results the gateway ignores)
  return ``None`` immediately and are queued in order.
* Any other call joins the queue as its final element and flushes the
  whole batch at once, returning that call's result — so e.g. the
  executor's document-store ``delete`` (whose boolean result is needed)
  still shares the single round trip with the per-field index deletes
  queued before it.
* Server-side execution order equals enqueue order, and one failing
  sub-call never poisons the rest (per-request error isolation in
  :meth:`repro.net.rpc.ServiceHost.dispatch_batch`).  The first error in
  the batch is re-raised gateway-side after the whole batch ran.

Scopes are thread-local, so concurrent application threads batch their
own operations independently.  Outside a scope the collector is a
transparent pass-through, which keeps the unbatched baseline behaviour
byte-for-byte identical.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crypto.kernels.config import CryptoConfig
    from repro.shard.config import ShardConfig


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of the batched/pipelined gateway<->cloud data path.

    The all-defaults instance keeps every optimisation off, preserving
    the unbatched per-operation round-trip behaviour as the comparison
    baseline.
    """

    #: Coalesce per-field index writes + the document-store write of one
    #: executor operation into a single batch frame.
    batch_writes: bool = False
    #: Resolve independent CNF literals concurrently with up to this many
    #: worker threads (0/1 keeps the serial path with its short-circuit).
    fanout_workers: int = 0
    #: Prefetch the next ``get_many`` chunk while the previous one is
    #: being decrypted and verified.
    prefetch: bool = False
    #: Candidate-fetch chunk size used by the plan engine's ``FetchDocs``
    #: node.  0 keeps the per-operation legacy defaults (64 for ``find``,
    #: ``max(2*limit, 16)`` under a limit, 16 for min/max streaming, 32
    #: for ordered scans); any positive value overrides them all — the
    #: single knob for the whole read path.
    fetch_chunk: int = 0
    #: Cost-based adaptive tactic selection: when a field plan admits
    #: alternative tactics for a role, the optimizer explores them during
    #: a short warmup and then routes each ``IndexLookup`` to the tactic
    #: with the lowest observed latency EWMA.  Off by default — the plan
    #: compiler then always binds the statically selected tactic, and the
    #: write path feeds only the primary indexes (seed behaviour).
    adaptive_selection: bool = False
    #: How many observations each candidate tactic gets before the
    #: optimizer starts exploiting the latency EWMAs.
    adaptive_warmup: int = 2
    #: Cache optimized plans keyed by (schema, operation, predicate
    #: shape).  Pure gateway-side memoisation — results and wire traffic
    #: are unchanged — so it defaults on; disable to measure compile cost.
    plan_cache: bool = True
    #: Shard the untrusted zone: when set (and the deployment hands the
    #: middleware a *list* of named per-node transports), documents and
    #: secure indexes partition across N cloud nodes behind a
    #: :class:`repro.shard.router.ShardedTransport`.  ``None`` keeps the
    #: seed single-zone wiring byte-for-byte.
    sharding: "ShardConfig | None" = None
    #: Gateway crypto kernels: batched tactic SPI, process-pool offload
    #: of big-int work and fixed-base modexp precomputation
    #: (:class:`repro.crypto.kernels.config.CryptoConfig`).  ``None``
    #: (or an all-defaults config) keeps every per-value crypto call on
    #: the seed's sequential inline path.
    crypto: "CryptoConfig | None" = None
    #: Pipelined bulk writes: split ``insert_many`` into chunks of this
    #: many documents and overlap chunk N+1's crypto-kernel work with
    #: chunk N's batch frame in flight (the frame ships on the fan-out
    #: pool; at most one is airborne, so per-shard write order stays
    #: chunk order).  Requires ``batch_writes`` and active ``crypto``
    #: kernels; 0 keeps the single crypto-then-wire pass.
    write_chunk: int = 0


#: Methods whose results gateway callers ignore: index maintenance on
#: tactic services and append-style document-store writes.  The
#: document-store ``delete`` is excluded by the service rule below — its
#: boolean result is consumed — so it flushes the batch as its final
#: element instead.
DEFERRABLE_METHODS = frozenset({
    "insert",
    "insert_many",
    "insert_terms",
    "update",
    "update_terms",
    "delete",
    "delete_terms",
    "replace",
})

#: Document-store services get stricter deferral rules (see above).
_DOCS_PREFIX = "docs/"


class _Scope:
    """One thread's open collection scope (supports nesting)."""

    __slots__ = ("depth", "pending")

    def __init__(self) -> None:
        self.depth = 1
        self.pending: list[Request] = []


class BatchCollector(Transport):
    """Transport wrapper that batches deferrable writes per scope."""

    def __init__(self, inner: Transport,
                 deferrable: frozenset[str] = DEFERRABLE_METHODS):
        self._inner = inner
        self._deferrable = deferrable
        self._local = threading.local()

    @property
    def inner(self) -> Transport:
        return self._inner

    # -- scope management --------------------------------------------------------

    def _scope(self) -> _Scope | None:
        return getattr(self._local, "scope", None)

    @contextmanager
    def collect(self) -> Iterator["BatchCollector"]:
        """Open a collection scope on the calling thread.

        Nested scopes join the outermost one; the queue flushes when the
        outermost scope exits (also on error, so gateway-side state —
        SSE counters, Sophos tokens — never runs ahead of the cloud).
        """
        scope = self._scope()
        if scope is None:
            scope = _Scope()
            self._local.scope = scope
        else:
            scope.depth += 1
        try:
            yield self
        finally:
            scope.depth -= 1
            if scope.depth == 0:
                self._local.scope = None
                if scope.pending:
                    self._ship(scope.pending)

    def _defers(self, service: str, method: str) -> bool:
        if method not in self._deferrable:
            return False
        if service.startswith(_DOCS_PREFIX):
            # Document-store reads/deletes return data; only the pure
            # write methods are fire-and-forget there.
            return method in ("insert", "insert_many", "replace")
        return service != "admin"

    # -- Transport interface ------------------------------------------------------

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        scope = self._scope()
        if scope is None:
            return self._inner.call_request(request)
        if self._defers(request.service, request.method):
            scope.pending.append(request)
            return None
        if not scope.pending:
            # Nothing queued: a plain call is cheaper than a 1-batch.
            return self._inner.call_request(request)
        # Join the queue as the final element and flush now: reads (and
        # result-bearing writes) must observe every queued write, and the
        # whole group still costs one round trip.
        scope.pending.append(request)
        pending, scope.pending = scope.pending, []
        responses = self._ship(pending)
        return responses[-1].result

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        return self._inner.call_batch(requests)

    def flush(self) -> None:
        """Ship any queued writes of the calling thread's scope now."""
        scope = self._scope()
        if scope is not None and scope.pending:
            pending, scope.pending = scope.pending, []
            self._ship(pending)

    def in_scope(self) -> bool:
        """Whether the calling thread has an open collection scope."""
        return self._scope() is not None

    def drain_pending(self) -> list[Request]:
        """Take over the calling thread's queued writes without shipping.

        The write pipeline uses this to close a scope empty and hand the
        frame to a worker thread — crypto for the next chunk then runs
        while this frame crosses the wire via :meth:`ship`.
        """
        scope = self._scope()
        if scope is None or not scope.pending:
            return []
        pending, scope.pending = scope.pending, []
        return pending

    def ship(self, requests: Sequence[Request]) -> list[Response]:
        """Ship one prepared frame now (callable from any thread).

        The inner transport receives the whole frame in a single
        :meth:`~repro.net.transport.Transport.call_batch` — a sharded
        router may split and scatter it per shard — and the first failed
        sub-call re-raises after the batch ran, exactly like a scope
        flush.
        """
        return self._ship(list(requests))

    def _ship(self, pending: list[Request]) -> list[Response]:
        responses = self._inner.call_batch(pending)
        for response in responses:
            if not response.ok:
                response.unwrap()  # raises RemoteError for the first failure
        return responses

    def stats(self) -> NetworkStats:
        return self._inner.stats()

    def labeled_stats(self) -> dict[str, NetworkStats]:
        return self._inner.labeled_stats()

    def topology_epoch(self) -> int:
        return self._inner.topology_epoch()

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        return self._inner.drain_shard_timings()

    def drain_async_writes(self, timeout: float | None = None) -> int:
        return self._inner.drain_async_writes(timeout)

    def close(self) -> None:
        self._inner.close()
