"""Gateway-side RPC batching: coalescing cloud writes into one frame.

The executor's write paths fan out over every protected field of a
document — one ``insert``/``update``/``delete`` per (field, tactic)
cloud half plus the document-store write.  Unbatched, each of those is a
blocking round trip across the gateway/cloud link; a 5-protected-field
insert pays ~6 sequential latency charges.  :class:`BatchCollector`
wraps the deployment's transport so that, inside a *collection scope*,
fire-and-forget writes are enqueued instead of shipped, and the whole
queue crosses the wire as **one** batch frame
(:meth:`repro.net.transport.Transport.call_batch`) when the scope
closes.

Semantics inside a scope:

* *Deferrable* calls (index writes whose results the gateway ignores)
  return ``None`` immediately and are queued in order.
* Any other call joins the queue as its final element and flushes the
  whole batch at once, returning that call's result — so e.g. the
  executor's document-store ``delete`` (whose boolean result is needed)
  still shares the single round trip with the per-field index deletes
  queued before it.
* Server-side execution order equals enqueue order, and one failing
  sub-call never poisons the rest (per-request error isolation in
  :meth:`repro.net.rpc.ServiceHost.dispatch_batch`).  The first error in
  the batch is re-raised gateway-side after the whole batch ran.

Scopes are **context-local** (:mod:`contextvars`), so concurrent
operations batch independently whether they are application threads,
asyncio tasks, or logical operations multiplexed over a pooled thread —
the gateway runtime runs each operation in its own copied context, so a
scope abandoned by one operation can never leak into the next one that
lands on the same pool thread (the latent bug of the earlier
thread-local scopes).  Outside a scope the collector is a transparent
pass-through, which keeps the unbatched baseline behaviour byte-for-byte
identical.

With a *coalesce window* configured
(:attr:`PipelineConfig.coalesce_window_ms`), prepared frames from
different concurrent operations additionally merge into shared wire
batches via :class:`repro.net.coalesce.FrameCoalescer`.
"""

from __future__ import annotations

import asyncio
import contextvars
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.config import CacheConfig
    from repro.crypto.kernels.config import CryptoConfig
    from repro.integrity.config import IntegrityConfig
    from repro.shard.config import ShardConfig


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of the batched/pipelined gateway<->cloud data path.

    The all-defaults instance keeps every optimisation off, preserving
    the unbatched per-operation round-trip behaviour as the comparison
    baseline.
    """

    #: Coalesce per-field index writes + the document-store write of one
    #: executor operation into a single batch frame.
    batch_writes: bool = False
    #: Resolve independent CNF literals concurrently with up to this many
    #: worker threads (0/1 keeps the serial path with its short-circuit).
    fanout_workers: int = 0
    #: Prefetch the next ``get_many`` chunk while the previous one is
    #: being decrypted and verified.
    prefetch: bool = False
    #: Candidate-fetch chunk size used by the plan engine's ``FetchDocs``
    #: node.  0 keeps the per-operation legacy defaults (64 for ``find``,
    #: ``max(2*limit, 16)`` under a limit, 16 for min/max streaming, 32
    #: for ordered scans); any positive value overrides them all — the
    #: single knob for the whole read path.
    fetch_chunk: int = 0
    #: Cost-based adaptive tactic selection: when a field plan admits
    #: alternative tactics for a role, the optimizer explores them during
    #: a short warmup and then routes each ``IndexLookup`` to the tactic
    #: with the lowest observed latency EWMA.  Off by default — the plan
    #: compiler then always binds the statically selected tactic, and the
    #: write path feeds only the primary indexes (seed behaviour).
    adaptive_selection: bool = False
    #: How many observations each candidate tactic gets before the
    #: optimizer starts exploiting the latency EWMAs.
    adaptive_warmup: int = 2
    #: Cache optimized plans keyed by (schema, operation, predicate
    #: shape).  Pure gateway-side memoisation — results and wire traffic
    #: are unchanged — so it defaults on; disable to measure compile cost.
    plan_cache: bool = True
    #: Shard the untrusted zone: when set (and the deployment hands the
    #: middleware a *list* of named per-node transports), documents and
    #: secure indexes partition across N cloud nodes behind a
    #: :class:`repro.shard.router.ShardedTransport`.  ``None`` keeps the
    #: seed single-zone wiring byte-for-byte.
    sharding: "ShardConfig | None" = None
    #: Gateway crypto kernels: batched tactic SPI, process-pool offload
    #: of big-int work and fixed-base modexp precomputation
    #: (:class:`repro.crypto.kernels.config.CryptoConfig`).  ``None``
    #: (or an all-defaults config) keeps every per-value crypto call on
    #: the seed's sequential inline path.
    crypto: "CryptoConfig | None" = None
    #: Pipelined bulk writes: split ``insert_many`` into chunks of this
    #: many documents and overlap chunk N+1's crypto-kernel work with
    #: chunk N's batch frame in flight (the frame ships on the fan-out
    #: pool; at most one is airborne, so per-shard write order stays
    #: chunk order).  Requires ``batch_writes`` and active ``crypto``
    #: kernels; 0 keeps the single crypto-then-wire pass.
    write_chunk: int = 0
    #: Cross-operation frame coalescing: prepared batch frames from
    #: *different* concurrent operations wait up to this many
    #: milliseconds in a flush window and ship together as one wire
    #: batch (:mod:`repro.net.coalesce`).  Trades a bounded queueing
    #: delay for a multiplicative cut in WAN round trips under
    #: concurrent load.  0 keeps one wire batch per operation —
    #: byte-identical to the pre-coalescing behaviour.
    coalesce_window_ms: float = 0.0
    #: Slot budget of one coalesced wire batch: the window closes early
    #: once the combined batch holds this many sub-requests.
    coalesce_max_slots: int = 256
    #: Integrity & freshness verification
    #: (:class:`repro.integrity.config.IntegrityConfig`): Merkle state
    #: roots on the cloud, a freshness ledger at the gateway, and either
    #: proof-on-fetch verified reads or an audit-pass sweep, activated
    #: per protection class.  ``None`` keeps the seed's trusting read
    #: path byte-for-byte (no tracker, no extra services, no wire
    #: changes).
    integrity: "IntegrityConfig | None" = None
    #: Gateway read-cache tier (:class:`repro.cache.config.CacheConfig`):
    #: token, search-result and decrypted-document caches, coherent via
    #: local write-versions and — with ``integrity`` configured — the
    #: freshness ledger's per-shard root/seq stamps.  ``None`` keeps the
    #: seed read path byte-for-byte (no tier object, no extra state).
    cache: "CacheConfig | None" = None


#: Methods whose results gateway callers ignore: index maintenance on
#: tactic services and append-style document-store writes.  The
#: document-store ``delete`` is excluded by the service rule below — its
#: boolean result is consumed — so it flushes the batch as its final
#: element instead.
DEFERRABLE_METHODS = frozenset({
    "insert",
    "insert_many",
    "insert_terms",
    "update",
    "update_terms",
    "delete",
    "delete_terms",
    "replace",
})

#: Document-store services get stricter deferral rules (see above).
_DOCS_PREFIX = "docs/"


class _Scope:
    """One operation's open collection scope (supports nesting)."""

    __slots__ = ("depth", "pending")

    def __init__(self) -> None:
        self.depth = 1
        self.pending: list[Request] = []


class BatchCollector(Transport):
    """Transport wrapper that batches deferrable writes per scope."""

    def __init__(self, inner: Transport,
                 deferrable: frozenset[str] = DEFERRABLE_METHODS,
                 coalesce_window_ms: float = 0.0,
                 coalesce_max_slots: int = 256):
        self._inner = inner
        self._deferrable = deferrable
        # Context-local scope slot.  Per-instance so two collectors in
        # one process never share scopes; the default makes every fresh
        # context (new thread, new copied operation context) scopeless.
        self._scope_var: contextvars.ContextVar[_Scope | None] = (
            contextvars.ContextVar(f"batch_scope_{id(self):x}",
                                   default=None)
        )
        self._coalescer = None
        if coalesce_window_ms > 0:
            from repro.net.coalesce import FrameCoalescer

            self._coalescer = FrameCoalescer(
                inner, window_s=coalesce_window_ms / 1000.0,
                max_slots=coalesce_max_slots,
            )

    @property
    def inner(self) -> Transport:
        return self._inner

    @property
    def coalescer(self):
        """The cross-operation frame coalescer, when configured."""
        return self._coalescer

    # -- scope management --------------------------------------------------------

    def _scope(self) -> _Scope | None:
        return self._scope_var.get()

    @contextmanager
    def collect(self) -> Iterator["BatchCollector"]:
        """Open a collection scope in the calling context.

        Nested scopes join the outermost one; the queue flushes when the
        outermost scope exits (also on error, so gateway-side state —
        SSE counters, Sophos tokens — never runs ahead of the cloud).
        The scope lives in a :class:`~contextvars.ContextVar`, so it is
        visible exactly to the opening thread/task and to work it runs
        under a copy of its context (``asyncio.to_thread``), never to an
        unrelated operation scheduled onto the same pooled thread.
        """
        scope = self._scope()
        token = None
        if scope is None:
            scope = _Scope()
            token = self._scope_var.set(scope)
        else:
            scope.depth += 1
        try:
            yield self
        finally:
            scope.depth -= 1
            if scope.depth == 0:
                if token is not None:
                    try:
                        self._scope_var.reset(token)
                    except ValueError:
                        # Finalized from a foreign context: a cancelled
                        # or abandoned operation's frame was GC'd after
                        # its opening context died.  There is no slot
                        # left to clear, but the pending writes below
                        # still flush so the cloud never falls behind
                        # gateway-side tactic state.
                        pass
                else:  # pragma: no cover - outermost always holds the token
                    self._scope_var.set(None)
                if scope.pending:
                    self._ship(scope.pending)

    def _defers(self, service: str, method: str) -> bool:
        if method not in self._deferrable:
            return False
        if service.startswith(_DOCS_PREFIX):
            # Document-store reads/deletes return data; only the pure
            # write methods are fire-and-forget there.
            return method in ("insert", "insert_many", "replace")
        return service != "admin"

    # -- Transport interface ------------------------------------------------------

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        scope = self._scope()
        if scope is None:
            return self._inner.call_request(request)
        if self._defers(request.service, request.method):
            scope.pending.append(request)
            return None
        if not scope.pending:
            # Nothing queued: a plain call is cheaper than a 1-batch.
            return self._inner.call_request(request)
        # Join the queue as the final element and flush now: reads (and
        # result-bearing writes) must observe every queued write, and the
        # whole group still costs one round trip.
        scope.pending.append(request)
        pending, scope.pending = scope.pending, []
        responses = self._ship(pending)
        return responses[-1].result

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        return self._inner.call_batch(requests)

    async def call_request_async(self, request: Request) -> Any:
        """Async mirror of :meth:`call_request` over the inner async path.

        The scope is read from the calling task's context, so concurrent
        operations — each running as its own task or in its own copied
        context — keep independent queues exactly like threads do.
        """
        scope = self._scope()
        if scope is None:
            return await self._inner.call_request_async(request)
        if self._defers(request.service, request.method):
            scope.pending.append(request)
            return None
        if not scope.pending:
            return await self._inner.call_request_async(request)
        scope.pending.append(request)
        pending, scope.pending = scope.pending, []
        responses = await self._ship_async(pending)
        return responses[-1].result

    async def call_batch_async(
        self, requests: Sequence[Request]
    ) -> list[Response]:
        return await self._inner.call_batch_async(requests)

    def flush(self) -> None:
        """Ship any queued writes of the calling context's scope now."""
        scope = self._scope()
        if scope is not None and scope.pending:
            pending, scope.pending = scope.pending, []
            self._ship(pending)

    def in_scope(self) -> bool:
        """Whether the calling context has an open collection scope."""
        return self._scope() is not None

    def drain_pending(self) -> list[Request]:
        """Take over the calling context's queued writes without shipping.

        The write pipeline uses this to close a scope empty and hand the
        frame to a worker thread — crypto for the next chunk then runs
        while this frame crosses the wire via :meth:`ship`.
        """
        scope = self._scope()
        if scope is None or not scope.pending:
            return []
        pending, scope.pending = scope.pending, []
        return pending

    def ship(self, requests: Sequence[Request]) -> list[Response]:
        """Ship one prepared frame now (callable from any thread).

        The inner transport receives the whole frame in a single
        :meth:`~repro.net.transport.Transport.call_batch` — a sharded
        router may split and scatter it per shard — and the first failed
        sub-call re-raises after the batch ran, exactly like a scope
        flush.
        """
        return self._ship(list(requests))

    async def ship_async(
        self, requests: Sequence[Request]
    ) -> list[Response]:
        """Async :meth:`ship`: the wire wait is held by the event loop."""
        return await self._ship_async(list(requests))

    def _ship(self, pending: list[Request]) -> list[Response]:
        if self._coalescer is not None:
            responses = self._coalescer.submit(pending).result()
        else:
            responses = self._inner.call_batch(pending)
        return self._unwrap_first_failure(responses)

    async def _ship_async(self, pending: list[Request]) -> list[Response]:
        if self._coalescer is not None:
            responses = await asyncio.wrap_future(
                self._coalescer.submit(pending)
            )
        else:
            responses = await self._inner.call_batch_async(pending)
        return self._unwrap_first_failure(responses)

    @staticmethod
    def _unwrap_first_failure(
        responses: list[Response],
    ) -> list[Response]:
        for response in responses:
            if not response.ok:
                response.unwrap()  # raises RemoteError for the first failure
        return responses

    def stats(self) -> NetworkStats:
        return self._inner.stats()

    def labeled_stats(self) -> dict[str, NetworkStats]:
        return self._inner.labeled_stats()

    def call_labeled(self, service: str, method: str,
                     **kwargs: Any) -> dict[str, Any]:
        return self._inner.call_labeled(service, method, **kwargs)

    def topology_epoch(self) -> int:
        return self._inner.topology_epoch()

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        return self._inner.drain_shard_timings()

    def drain_async_writes(self, timeout: float | None = None) -> int:
        return self._inner.drain_async_writes(timeout)

    def close(self) -> None:
        if self._coalescer is not None:
            self._coalescer.close()
        self._inner.close()
