"""Cross-operation frame coalescing: many operations, one wire batch.

:class:`repro.net.batch.BatchCollector` batches the writes of *one*
operation into one frame.  Under concurrent load — the async gateway
runtime holding hundreds of operations in flight — frames from
*different* operations still cross the link individually, so a 40 ms WAN
charges every operation its own round trip even when ten of them become
ready within a millisecond of each other.

:class:`FrameCoalescer` closes that gap.  Prepared frames are submitted
to a collector thread which waits a short *flush window* for more frames
to arrive, concatenates everything collected into one
:meth:`~repro.net.transport.Transport.call_batch` wire batch, and splits
the ordered responses back per submitted frame.  Combined batches ship
on a small worker pool, so the link holds several coalesced batches in
flight at once — the window trades a bounded queueing delay for a
multiplicative cut in round trips, the aggregation shape the
controllable-leakage and oblivious-processing designs assume a gateway
can provide.

Error contract: per-slot failures stay error :class:`Response` objects
in their slots (the caller unwraps its own frame), while a link-level
:class:`TransportError` on the combined batch propagates to every frame
that rode in it — same as if each had shipped alone and hit the fault.
"""

from __future__ import annotations

import concurrent.futures
import queue
import threading
import time
from dataclasses import dataclass
from typing import Sequence

from repro.net.rpc import Request, Response
from repro.net.transport import Transport

_SHUTDOWN = None


@dataclass
class CoalesceStats:
    """Operator-visible effectiveness counters."""

    frames_in: int = 0       # frames submitted by operations
    batches_out: int = 0     # combined wire batches actually shipped
    slots_shipped: int = 0   # total sub-requests across all batches

    @property
    def frames_per_batch(self) -> float:
        return self.frames_in / self.batches_out if self.batches_out else 0.0


class FrameCoalescer:
    """Merges concurrently submitted frames into shared wire batches."""

    def __init__(self, inner: Transport, window_s: float = 0.002,
                 max_slots: int = 256, workers: int = 4):
        self._inner = inner
        self._window_s = max(0.0, window_s)
        self._max_slots = max(1, max_slots)
        self._queue: queue.Queue = queue.Queue()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="coalesce-ship"
        )
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._closed = False
        self.stats = CoalesceStats()

    def submit(
        self, requests: Sequence[Request]
    ) -> "concurrent.futures.Future[list[Response]]":
        """Hand one prepared frame to the flush window.

        Returns a future resolving to this frame's responses (in its own
        request order) once the combined batch it rode in completes.
        Callable from any thread; async callers wrap the future with
        :func:`asyncio.wrap_future`.
        """
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="coalesce-window", daemon=True
                )
                self._thread.start()
        self._queue.put((list(requests), future))
        return future

    # -- collector thread --------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            group = [item]
            slots = len(item[0])
            deadline = time.monotonic() + self._window_s
            while slots < self._max_slots:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    self._dispatch(group)
                    return
                group.append(nxt)
                slots += len(nxt[0])
            self._dispatch(group)

    def _dispatch(
        self,
        group: list[tuple[list[Request],
                          "concurrent.futures.Future[list[Response]]"]],
    ) -> None:
        with self._lock:
            self.stats.frames_in += len(group)
            self.stats.batches_out += 1
            self.stats.slots_shipped += sum(len(reqs) for reqs, _ in group)
        # Ship on the pool, not the collector thread: the next window can
        # start collecting while this combined batch is still on the wire.
        self._pool.submit(self._ship_group, group)

    def _ship_group(
        self,
        group: list[tuple[list[Request],
                          "concurrent.futures.Future[list[Response]]"]],
    ) -> None:
        combined = [request for requests, _ in group for request in requests]
        try:
            responses = self._inner.call_batch(combined)
        except BaseException as exc:  # noqa: BLE001 - fan the fault out
            for _, future in group:
                if not future.cancelled():
                    future.set_exception(exc)
            return
        offset = 0
        for requests, future in group:
            slice_ = responses[offset:offset + len(requests)]
            offset += len(requests)
            if not future.cancelled():
                future.set_result(slice_)

    def close(self) -> None:
        """Flush-and-stop: frames already queued still ship."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is not None:
            self._queue.put(_SHUTDOWN)
            thread.join(timeout=5.0)
        self._pool.shutdown(wait=True)
