"""RPC dispatch: service hosting and typed request/response.

A :class:`ServiceHost` lives in the untrusted zone (the cloud) and exposes
named services — one per cloud-side tactic implementation plus the
document store service.  Transports deliver ``Request`` frames to a host
and carry ``Response`` frames back; remote exceptions are re-raised at the
caller as :class:`repro.errors.RemoteError` with the remote type name
preserved.

Besides single-request frames, hosts dispatch *batch* frames: N requests
shipped as one wire payload (``{"batch": [...]}``) and answered with N
responses in order.  Each sub-request is dispatched independently, so a
failing one yields an error response in its slot without poisoning the
rest of the batch.

Requests may carry an *idempotency key* (``idem``, a short unique string
minted by :class:`repro.net.resilience.ResilientTransport` for mutating
methods).  The host remembers the response of every keyed request in a
bounded dedup window, so an at-least-once delivery — a retry after a
lost reply, or a network-duplicated frame — re-returns the recorded
response instead of applying the write a second time.  That is what
makes retrying index/document writes safe for append-style secure
indexes (stateless SSE, BIEX buckets) and for the duplicate-rejecting
document store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.errors import DataBlinderError, RemoteError, TransportError

#: Key marking a wire payload as a batch frame rather than a single call.
BATCH_KEY = "batch"


@dataclass(frozen=True)
class Request:
    service: str
    method: str
    kwargs: dict[str, Any]
    #: Idempotency key; empty means "apply on every delivery".  Keyed
    #: requests are applied at most once per key within the host's dedup
    #: window (duplicate deliveries re-return the recorded response).
    idem: str = ""

    def to_payload(self) -> dict[str, Any]:
        payload = {"service": self.service, "method": self.method,
                   "kwargs": self.kwargs}
        if self.idem:
            payload["idem"] = self.idem
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Request":
        try:
            return cls(payload["service"], payload["method"],
                       dict(payload["kwargs"]),
                       idem=str(payload.get("idem", "")))
        except (KeyError, TypeError) as exc:
            raise TransportError(f"malformed request frame: {exc}") from exc


@dataclass(frozen=True)
class Response:
    ok: bool
    result: Any = None
    error_type: str = ""
    error_message: str = ""

    def to_payload(self) -> dict[str, Any]:
        if self.ok:
            return {"ok": True, "result": self.result}
        return {"ok": False, "error_type": self.error_type,
                "error_message": self.error_message}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Response":
        if payload.get("ok"):
            return cls(ok=True, result=payload.get("result"))
        return cls(ok=False, error_type=payload.get("error_type", "Error"),
                   error_message=payload.get("error_message", ""))

    def unwrap(self) -> Any:
        if self.ok:
            return self.result
        raise RemoteError(self.error_type, self.error_message)


def batch_request_payload(requests: list[Request]) -> dict[str, Any]:
    """One wire payload carrying a whole batch of requests."""
    return {BATCH_KEY: [request.to_payload() for request in requests]}


def requests_from_batch(payload: dict[str, Any]) -> list[Request]:
    items = payload.get(BATCH_KEY)
    if not isinstance(items, list):
        raise TransportError("malformed batch request frame")
    return [Request.from_payload(item) for item in items]


def batch_response_payload(responses: list[Response]) -> dict[str, Any]:
    return {BATCH_KEY: [response.to_payload() for response in responses]}


def responses_from_batch(payload: dict[str, Any]) -> list[Response]:
    items = payload.get(BATCH_KEY)
    if not isinstance(items, list):
        raise TransportError("malformed batch response frame")
    return [Response.from_payload(item) for item in items]


def is_batch_payload(payload: Any) -> bool:
    return isinstance(payload, dict) and BATCH_KEY in payload


class ServiceHost:
    """A registry of callable services with uniform dispatch.

    Services are plain objects; any public method (no leading underscore)
    is callable remotely with keyword arguments.

    ``dedup_window`` bounds the number of idempotency-keyed responses the
    host remembers (LRU).  The window must exceed the number of keyed
    writes a client can have in flight between a fault and its retry;
    the default comfortably covers one executor operation's fan-out plus
    a batch frame.
    """

    def __init__(self, dedup_window: int = 1024) -> None:
        self._services: dict[str, Any] = {}
        self._lock = threading.RLock()
        self._dedup: OrderedDict[str, Response] = OrderedDict()
        self._dedup_window = dedup_window
        self._dedup_hits = 0
        #: Keyed responses the LRU pushed out before any retry claimed
        #: them.  A nonzero count under fault load means the window may
        #: be too small for the deployment's in-flight write fan-out —
        #: surfaced through ``dedup_stats`` and the transport's
        #: :class:`~repro.net.latency.NetworkStats`.
        self._dedup_evictions = 0

    def register(self, name: str, service: Any) -> None:
        with self._lock:
            if name in self._services:
                raise TransportError(f"service {name!r} already registered")
            self._services[name] = service

    def unregister(self, name: str) -> None:
        with self._lock:
            self._services.pop(name, None)

    def get(self, name: str) -> Any:
        with self._lock:
            service = self._services.get(name)
        if service is None:
            raise TransportError(f"unknown service {name!r}")
        return service

    def service_names(self) -> list[str]:
        with self._lock:
            return sorted(self._services)

    def dedup_stats(self) -> dict[str, int]:
        """Observability for the idempotency window (tests, metrics)."""
        with self._lock:
            return {
                "entries": len(self._dedup),
                "hits": self._dedup_hits,
                "evictions": self._dedup_evictions,
                "window": self._dedup_window,
            }

    def _dedup_lookup(self, idem: str) -> Response | None:
        with self._lock:
            cached = self._dedup.get(idem)
            if cached is not None:
                self._dedup.move_to_end(idem)
                self._dedup_hits += 1
            return cached

    def _dedup_record(self, idem: str, response: Response) -> None:
        with self._lock:
            self._dedup[idem] = response
            self._dedup.move_to_end(idem)
            while len(self._dedup) > self._dedup_window:
                self._dedup.popitem(last=False)
                self._dedup_evictions += 1

    def dispatch(self, request: Request) -> Response:
        if request.idem:
            cached = self._dedup_lookup(request.idem)
            if cached is not None:
                return cached
        response = self._dispatch_once(request)
        if request.idem:
            self._dedup_record(request.idem, response)
        return response

    def _dispatch_once(self, request: Request) -> Response:
        try:
            service = self.get(request.service)
            if request.method.startswith("_"):
                raise TransportError(
                    f"method {request.method!r} is not remotely callable"
                )
            method = getattr(service, request.method, None)
            if method is None or not callable(method):
                raise TransportError(
                    f"service {request.service!r} has no method "
                    f"{request.method!r}"
                )
            result = method(**request.kwargs)
            return Response(ok=True, result=result)
        except DataBlinderError as exc:
            return Response(ok=False, error_type=type(exc).__name__,
                            error_message=str(exc))
        except Exception as exc:  # noqa: BLE001 - must cross the wire
            return Response(ok=False, error_type=type(exc).__name__,
                            error_message=str(exc))

    def dispatch_batch(self, requests: list[Request]) -> list[Response]:
        """Dispatch a batch in order with per-request error isolation.

        ``dispatch`` already converts every failure into an error
        response, so one bad sub-call never aborts the requests queued
        behind it.
        """
        return [self.dispatch(request) for request in requests]
