"""RPC dispatch: service hosting and typed request/response.

A :class:`ServiceHost` lives in the untrusted zone (the cloud) and exposes
named services — one per cloud-side tactic implementation plus the
document store service.  Transports deliver ``Request`` frames to a host
and carry ``Response`` frames back; remote exceptions are re-raised at the
caller as :class:`repro.errors.RemoteError` with the remote type name
preserved.

Besides single-request frames, hosts dispatch *batch* frames: N requests
shipped as one wire payload (``{"batch": [...]}``) and answered with N
responses in order.  Each sub-request is dispatched independently, so a
failing one yields an error response in its slot without poisoning the
rest of the batch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import DataBlinderError, RemoteError, TransportError

#: Key marking a wire payload as a batch frame rather than a single call.
BATCH_KEY = "batch"


@dataclass(frozen=True)
class Request:
    service: str
    method: str
    kwargs: dict[str, Any]

    def to_payload(self) -> dict[str, Any]:
        return {"service": self.service, "method": self.method,
                "kwargs": self.kwargs}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Request":
        try:
            return cls(payload["service"], payload["method"],
                       dict(payload["kwargs"]))
        except (KeyError, TypeError) as exc:
            raise TransportError(f"malformed request frame: {exc}") from exc


@dataclass(frozen=True)
class Response:
    ok: bool
    result: Any = None
    error_type: str = ""
    error_message: str = ""

    def to_payload(self) -> dict[str, Any]:
        if self.ok:
            return {"ok": True, "result": self.result}
        return {"ok": False, "error_type": self.error_type,
                "error_message": self.error_message}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Response":
        if payload.get("ok"):
            return cls(ok=True, result=payload.get("result"))
        return cls(ok=False, error_type=payload.get("error_type", "Error"),
                   error_message=payload.get("error_message", ""))

    def unwrap(self) -> Any:
        if self.ok:
            return self.result
        raise RemoteError(self.error_type, self.error_message)


def batch_request_payload(requests: list[Request]) -> dict[str, Any]:
    """One wire payload carrying a whole batch of requests."""
    return {BATCH_KEY: [request.to_payload() for request in requests]}


def requests_from_batch(payload: dict[str, Any]) -> list[Request]:
    items = payload.get(BATCH_KEY)
    if not isinstance(items, list):
        raise TransportError("malformed batch request frame")
    return [Request.from_payload(item) for item in items]


def batch_response_payload(responses: list[Response]) -> dict[str, Any]:
    return {BATCH_KEY: [response.to_payload() for response in responses]}


def responses_from_batch(payload: dict[str, Any]) -> list[Response]:
    items = payload.get(BATCH_KEY)
    if not isinstance(items, list):
        raise TransportError("malformed batch response frame")
    return [Response.from_payload(item) for item in items]


def is_batch_payload(payload: Any) -> bool:
    return isinstance(payload, dict) and BATCH_KEY in payload


class ServiceHost:
    """A registry of callable services with uniform dispatch.

    Services are plain objects; any public method (no leading underscore)
    is callable remotely with keyword arguments.
    """

    def __init__(self) -> None:
        self._services: dict[str, Any] = {}
        self._lock = threading.RLock()

    def register(self, name: str, service: Any) -> None:
        with self._lock:
            if name in self._services:
                raise TransportError(f"service {name!r} already registered")
            self._services[name] = service

    def unregister(self, name: str) -> None:
        with self._lock:
            self._services.pop(name, None)

    def get(self, name: str) -> Any:
        with self._lock:
            service = self._services.get(name)
        if service is None:
            raise TransportError(f"unknown service {name!r}")
        return service

    def service_names(self) -> list[str]:
        with self._lock:
            return sorted(self._services)

    def dispatch(self, request: Request) -> Response:
        try:
            service = self.get(request.service)
            if request.method.startswith("_"):
                raise TransportError(
                    f"method {request.method!r} is not remotely callable"
                )
            method = getattr(service, request.method, None)
            if method is None or not callable(method):
                raise TransportError(
                    f"service {request.service!r} has no method "
                    f"{request.method!r}"
                )
            result = method(**request.kwargs)
            return Response(ok=True, result=result)
        except DataBlinderError as exc:
            return Response(ok=False, error_type=type(exc).__name__,
                            error_message=str(exc))
        except Exception as exc:  # noqa: BLE001 - must cross the wire
            return Response(ok=False, error_type=type(exc).__name__,
                            error_message=str(exc))

    def dispatch_batch(self, requests: list[Request]) -> list[Response]:
        """Dispatch a batch in order with per-request error isolation.

        ``dispatch`` already converts every failure into an error
        response, so one bad sub-call never aborts the requests queued
        behind it.
        """
        return [self.dispatch(request) for request in requests]
