"""Canonical wire encoding for gateway <-> cloud messages.

Payloads are JSON objects extended with tagged ``bytes`` values (hex) and
tagged tuples, so that ciphertext blobs and PRF labels survive a real
network hop unchanged.  Both the in-process transport (which measures
message sizes for the network performance metrics) and the TCP transport
(which actually frames them onto a socket) use this codec.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import TransportError


def _to_wire(obj: Any) -> Any:
    if isinstance(obj, (bytes, bytearray)):
        return {"__b__": bytes(obj).hex()}
    if isinstance(obj, tuple):
        return {"__t__": [_to_wire(v) for v in obj]}
    if isinstance(obj, set):
        return {"__s__": sorted(_to_wire(v) for v in obj)}  # type: ignore[type-var]
    if isinstance(obj, dict):
        return {str(k): _to_wire(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_to_wire(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TransportError(
        f"value of type {type(obj).__name__} is not wire-encodable"
    )


def _from_wire(obj: Any) -> Any:
    if isinstance(obj, dict):
        if set(obj) == {"__b__"}:
            return bytes.fromhex(obj["__b__"])
        if set(obj) == {"__t__"}:
            return tuple(_from_wire(v) for v in obj["__t__"])
        if set(obj) == {"__s__"}:
            return {_from_wire(v) for v in obj["__s__"]}
        return {k: _from_wire(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_from_wire(v) for v in obj]
    return obj


def encode(payload: Any) -> bytes:
    """Serialize a payload to canonical wire bytes."""
    try:
        return json.dumps(
            _to_wire(payload), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise TransportError(f"cannot encode payload: {exc}") from exc


def decode(data: bytes) -> Any:
    try:
        return _from_wire(json.loads(data.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"cannot decode payload: {exc}") from exc


def wire_size(payload: Any) -> int:
    """Size in bytes of a payload on the wire (network metric input)."""
    return len(encode(payload))
