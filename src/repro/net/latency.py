"""Network model: latency/bandwidth simulation and byte accounting.

The paper's testbed puts the gateway in a private OpenStack cloud and the
cloud components on a public provider; every tactic protocol round-trip
crosses that link.  The in-process transport reproduces the link with this
model: a configurable one-way latency plus a serialization delay derived
from bandwidth, and counters feeding the *network overhead* performance
metrics of the tactic abstraction model (Fig. 1).
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field


@dataclass
class NetworkStats:
    """Cumulative traffic counters for one endpoint pair.

    Besides the raw traffic counters, the resilience layer
    (:mod:`repro.net.resilience`, :mod:`repro.net.faults`,
    :mod:`repro.net.multicloud`) reports its behaviour here: how many
    attempts were retried, how often a circuit breaker opened, how many
    calls failed over to a secondary provider, and how many faults the
    chaos harness injected — the operator-visible face of graceful
    degradation.
    """

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    simulated_delay_seconds: float = 0.0
    retries: int = 0
    breaker_opens: int = 0
    failovers: int = 0
    faults_injected: int = 0
    integrity_failures: int = 0
    stale_detected: int = 0
    #: Idempotency-keyed responses the serving host's dedup LRU evicted
    #: (see :class:`repro.net.rpc.ServiceHost`): nonzero under fault
    #: load means retries may re-apply writes the window forgot.
    dedup_evictions: int = 0

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        return NetworkStats(
            self.messages_sent + other.messages_sent,
            self.messages_received + other.messages_received,
            self.bytes_sent + other.bytes_sent,
            self.bytes_received + other.bytes_received,
            self.simulated_delay_seconds + other.simulated_delay_seconds,
            self.retries + other.retries,
            self.breaker_opens + other.breaker_opens,
            self.failovers + other.failovers,
            self.faults_injected + other.faults_injected,
            self.integrity_failures + other.integrity_failures,
            self.stale_detected + other.stale_detected,
            self.dedup_evictions + other.dedup_evictions,
        )


def roll_up(labeled: dict[str, NetworkStats]) -> NetworkStats:
    """Merge a labelled stats report into one total.

    Nested transports (resilience -> batch collector -> sharded router ->
    per-shard) each contribute their own counters under a label via
    ``Transport.labeled_stats``; the roll-up is the single
    :class:`NetworkStats` the whole stack amounts to.
    """
    total = NetworkStats()
    for stats in labeled.values():
        total = total.merge(stats)
    return total


def render_labeled(labeled: dict[str, NetworkStats]) -> str:
    """One report line per label plus the roll-up total."""
    lines = ["network stats by endpoint:"]
    for label in sorted(labeled):
        stats = labeled[label]
        lines.append(
            f"  {label}: sent={stats.messages_sent}"
            f" recv={stats.messages_received}"
            f" bytes={stats.bytes_sent + stats.bytes_received}"
            f" retries={stats.retries} breaker_opens={stats.breaker_opens}"
            f" failovers={stats.failovers}"
            f" faults={stats.faults_injected}"
            f" integrity_failures={stats.integrity_failures}"
            f" stale={stats.stale_detected}"
            f" dedup_evictions={stats.dedup_evictions}"
        )
    total = roll_up(labeled)
    lines.append(
        f"  total: sent={total.messages_sent}"
        f" recv={total.messages_received}"
        f" bytes={total.bytes_sent + total.bytes_received}"
        f" retries={total.retries} breaker_opens={total.breaker_opens}"
        f" failovers={total.failovers} faults={total.faults_injected}"
        f" integrity_failures={total.integrity_failures}"
        f" stale={total.stale_detected}"
        f" dedup_evictions={total.dedup_evictions}"
    )
    return "\n".join(lines)


@dataclass
class NetworkModel:
    """One-way delay model for a gateway<->cloud link.

    ``one_way_latency_ms`` is applied per direction; ``bandwidth_mbps``
    adds a size-proportional serialization delay.  ``sleep`` controls
    whether the delay is actually slept (wall-clock experiments) or only
    accounted (fast unit tests).
    """

    one_way_latency_ms: float = 0.0
    bandwidth_mbps: float = 0.0  # 0 means infinite
    sleep: bool = True

    def one_way_delay(self, nbytes: int) -> float:
        delay = self.one_way_latency_ms / 1000.0
        if self.bandwidth_mbps > 0:
            delay += nbytes * 8 / (self.bandwidth_mbps * 1_000_000)
        return delay

    def apply(self, nbytes: int) -> float:
        """Apply the one-way delay for a message of ``nbytes`` bytes."""
        delay = self.one_way_delay(nbytes)
        if delay > 0 and self.sleep:
            time.sleep(delay)
        return delay

    async def apply_async(self, nbytes: int) -> float:
        """Like :meth:`apply`, but yields the event loop while sleeping.

        The async transport paths charge the link with this so a single
        loop thread can hold thousands of in-flight WAN waits instead of
        parking one pool thread per direction.
        """
        delay = self.one_way_delay(nbytes)
        if delay > 0 and self.sleep:
            await asyncio.sleep(delay)
        return delay


class TrafficMeter:
    """Thread-safe accumulator of :class:`NetworkStats`."""

    def __init__(self) -> None:
        self._stats = NetworkStats()
        self._lock = threading.Lock()

    def record_send(self, nbytes: int, delay: float = 0.0) -> None:
        with self._lock:
            self._stats.messages_sent += 1
            self._stats.bytes_sent += nbytes
            self._stats.simulated_delay_seconds += delay

    def record_receive(self, nbytes: int, delay: float = 0.0) -> None:
        with self._lock:
            self._stats.messages_received += 1
            self._stats.bytes_received += nbytes
            self._stats.simulated_delay_seconds += delay

    def snapshot(self) -> NetworkStats:
        with self._lock:
            return NetworkStats(
                self._stats.messages_sent,
                self._stats.messages_received,
                self._stats.bytes_sent,
                self._stats.bytes_received,
                self._stats.simulated_delay_seconds,
            )

    def reset(self) -> None:
        with self._lock:
            self._stats = NetworkStats()
