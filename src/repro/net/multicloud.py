"""Multi-cloud routing: spreading the untrusted zone across providers.

The deployment view (Fig. 3) draws the untrusted zone as *several* cloud
providers.  Routing different services to different providers is a
leakage-partitioning tactic in itself: placing the encrypted documents
with one provider and the secure indexes with another means neither
snapshot alone correlates index structure with ciphertext objects — an
adversary needs both providers to mount the §2 snapshot attacks against
the combined view.

:class:`MultiCloudTransport` implements the standard
:class:`repro.net.transport.Transport` interface, so the middleware is
oblivious to the split: it routes each RPC by service-name rule to one
of the underlying transports (each typically an
:class:`InProcTransport` or :class:`TcpTransport` to a distinct
:class:`repro.cloud.server.CloudZone`).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import TransportError
from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport

Rule = Callable[[str], bool]


def prefix_rule(prefix: str) -> Rule:
    return lambda service: service.startswith(prefix)


def documents_rule(service: str) -> bool:
    """Route document storage (the ``docs/<app>`` services)."""
    return service.startswith("docs/")


def indexes_rule(service: str) -> bool:
    """Route secure indexes (the ``tactic/...`` services)."""
    return service.startswith("tactic/")


class MultiCloudTransport(Transport):
    """Service-name router over several provider transports.

    ``routes`` is an ordered list of ``(rule, transport)`` pairs; the
    first matching rule wins.  ``admin`` provisioning calls are fanned
    out to *every* provider (each zone must know the application and its
    tactic services; zones that never receive traffic for a service
    simply hold empty structures).
    """

    def __init__(self, routes: list[tuple[Rule, Transport]]):
        if not routes:
            raise TransportError("multi-cloud transport needs providers")
        self._routes = list(routes)

    def _route(self, service: str) -> Transport:
        for rule, transport in self._routes:
            if rule(service):
                return transport
        raise TransportError(
            f"no provider route matches service {service!r}"
        )

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        if service == "admin":
            # Fan out provisioning so every provider can serve its share.
            result: Any = None
            seen: list[Transport] = []
            for _, transport in self._routes:
                if any(transport is t for t in seen):
                    continue
                seen.append(transport)
                result = transport.call(service, method, **kwargs)
            return result
        return self._route(service).call(service, method, **kwargs)

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        """Split a batch by provider, one batch frame per provider.

        Requests keep their relative order within each provider; results
        come back in the original request order.  Cross-provider ordering
        is not preserved, which is safe because the providers hold
        disjoint stores.
        """
        groups: list[tuple[Transport, list[int], list[Request]]] = []
        for index, request in enumerate(requests):
            transport = self._route(request.service)
            for grouped, indices, grouped_requests in groups:
                if grouped is transport:
                    indices.append(index)
                    grouped_requests.append(request)
                    break
            else:
                groups.append((transport, [index], [request]))
        results: list[Response | None] = [None] * len(requests)
        for transport, indices, grouped_requests in groups:
            for index, response in zip(
                indices, transport.call_batch(grouped_requests)
            ):
                results[index] = response
        return [r for r in results if r is not None]

    def stats(self) -> NetworkStats:
        total = NetworkStats()
        seen: list[Transport] = []
        for _, transport in self._routes:
            if any(transport is t for t in seen):
                continue
            seen.append(transport)
            total = total.merge(transport.stats())
        return total

    def close(self) -> None:
        seen: list[Transport] = []
        for _, transport in self._routes:
            if any(transport is t for t in seen):
                continue
            seen.append(transport)
            transport.close()


def split_documents_and_indexes(document_provider: Transport,
                                index_provider: Transport
                                ) -> MultiCloudTransport:
    """The canonical two-provider split: documents with one provider,
    every secure index with another."""
    return MultiCloudTransport([
        (documents_rule, document_provider),
        (indexes_rule, index_provider),
        (lambda service: True, index_provider),  # admin et al.
    ])
