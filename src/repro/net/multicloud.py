"""Multi-cloud routing: spreading the untrusted zone across providers.

The deployment view (Fig. 3) draws the untrusted zone as *several* cloud
providers.  Routing different services to different providers is a
leakage-partitioning tactic in itself: placing the encrypted documents
with one provider and the secure indexes with another means neither
snapshot alone correlates index structure with ciphertext objects — an
adversary needs both providers to mount the §2 snapshot attacks against
the combined view.

:class:`MultiCloudTransport` implements the standard
:class:`repro.net.transport.Transport` interface, so the middleware is
oblivious to the split: it routes each RPC by service-name rule to one
of the underlying transports (each typically an
:class:`InProcTransport` or :class:`TcpTransport` to a distinct
:class:`repro.cloud.server.CloudZone`).

A route may name an optional *secondary* provider.  When the primary's
circuit breaker is open (the provider transport raises
:class:`repro.errors.CircuitOpenError` — see
:mod:`repro.net.resilience`), traffic for that route fails over to the
secondary; each engagement is counted in
:class:`repro.net.latency.NetworkStats.failovers` so graceful
degradation stays operator-visible.  Failover assumes the secondary
holds (replicates) the route's data — that is a deployment choice, the
router only supplies the mechanism.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.errors import CircuitOpenError, TransportError
from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport

Rule = Callable[[str], bool]

#: A routing entry: ``(rule, primary)`` or ``(rule, primary, secondary)``.
Route = "tuple[Rule, Transport] | tuple[Rule, Transport, Transport]"


def prefix_rule(prefix: str) -> Rule:
    return lambda service: service.startswith(prefix)


def documents_rule(service: str) -> bool:
    """Route document storage (the ``docs/<app>`` services)."""
    return service.startswith("docs/")


def indexes_rule(service: str) -> bool:
    """Route secure indexes (the ``tactic/...`` services)."""
    return service.startswith("tactic/")


class MultiCloudTransport(Transport):
    """Service-name router over several provider transports.

    ``routes`` is an ordered list of ``(rule, primary[, secondary])``
    entries; the first matching rule wins.  ``admin`` provisioning calls
    are fanned out to *every* provider, secondaries included (each zone
    must know the application and its tactic services; zones that never
    receive traffic for a service simply hold empty structures).
    """

    def __init__(self, routes: list):
        if not routes:
            raise TransportError("multi-cloud transport needs providers")
        self._routes: list[tuple[Rule, Transport, Transport | None]] = []
        for entry in routes:
            if len(entry) == 2:
                rule, primary = entry
                secondary = None
            elif len(entry) == 3:
                rule, primary, secondary = entry
            else:
                raise TransportError(
                    "route entries are (rule, primary[, secondary])"
                )
            self._routes.append((rule, primary, secondary))
        self._failovers = 0
        self._lock = threading.Lock()

    def _route(self, service: str) -> tuple[Transport, Transport | None]:
        for rule, primary, secondary in self._routes:
            if rule(service):
                return primary, secondary
        raise TransportError(
            f"no provider route matches service {service!r}"
        )

    def _providers(self) -> list[Transport]:
        """Every distinct provider transport, secondaries included."""
        seen: list[Transport] = []
        for _, primary, secondary in self._routes:
            for transport in (primary, secondary):
                if transport is not None and all(
                    transport is not t for t in seen
                ):
                    seen.append(transport)
        return seen

    def _record_failover(self) -> None:
        with self._lock:
            self._failovers += 1

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        if request.service == "admin":
            # Fan out provisioning so every provider can serve its share.
            result: Any = None
            for transport in self._providers():
                result = transport.call_request(request)
            return result
        primary, secondary = self._route(request.service)
        try:
            return primary.call_request(request)
        except CircuitOpenError:
            if secondary is None:
                raise
            self._record_failover()
            return secondary.call_request(request)

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        """Split a batch by provider, one batch frame per provider.

        Requests keep their relative order within each provider; results
        come back in the original request order.  Cross-provider ordering
        is not preserved, which is safe because the providers hold
        disjoint stores.  A group whose primary breaker is open fails
        over whole to the route's secondary when one is configured.
        """
        groups: list[tuple[Transport, Transport | None,
                           list[int], list[Request]]] = []
        for index, request in enumerate(requests):
            primary, secondary = self._route(request.service)
            for grouped, _, indices, grouped_requests in groups:
                if grouped is primary:
                    indices.append(index)
                    grouped_requests.append(request)
                    break
            else:
                groups.append((primary, secondary, [index], [request]))
        results: list[Response | None] = [None] * len(requests)
        for primary, secondary, indices, grouped_requests in groups:
            try:
                responses = primary.call_batch(grouped_requests)
            except CircuitOpenError:
                if secondary is None:
                    raise
                self._record_failover()
                responses = secondary.call_batch(grouped_requests)
            for index, response in zip(indices, responses):
                results[index] = response
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            # A provider answered with fewer responses than requests (or
            # a routing bug left slots unassigned).  Silently dropping
            # the slots would shift every later response onto the wrong
            # request — fail loudly instead.
            raise TransportError(
                f"multi-cloud batch incomplete: no response for request "
                f"slot(s) {missing}"
            )
        return results  # type: ignore[return-value]

    def stats(self) -> NetworkStats:
        total = NetworkStats()
        for transport in self._providers():
            total = total.merge(transport.stats())
        with self._lock:
            return total.merge(NetworkStats(failovers=self._failovers))

    def labeled_stats(self) -> dict[str, NetworkStats]:
        labeled: dict[str, NetworkStats] = {}
        for index, transport in enumerate(self._providers()):
            for label, stats in transport.labeled_stats().items():
                labeled[f"provider{index}:{label}"] = stats
        with self._lock:
            labeled["multicloud"] = NetworkStats(
                failovers=self._failovers
            )
        return labeled

    def call_labeled(self, service: str, method: str,
                     **kwargs: Any) -> dict[str, Any]:
        """Labeled broadcast, routed to the service's primary provider.

        Integrity state reports follow the data: the provider holding a
        route's stores is the one whose roots matter, so the broadcast
        is not fanned out to every provider the way ``admin`` calls are.
        """
        primary, secondary = self._route(service)
        try:
            return primary.call_labeled(service, method, **kwargs)
        except CircuitOpenError:
            if secondary is None:
                raise
            self._record_failover()
            return secondary.call_labeled(service, method, **kwargs)

    def topology_epoch(self) -> int:
        return max(
            (t.topology_epoch() for t in self._providers()), default=0
        )

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        timings: list[tuple[str, float]] = []
        for transport in self._providers():
            timings.extend(transport.drain_shard_timings())
        return timings

    def drain_async_writes(self, timeout: float | None = None) -> int:
        return sum(
            transport.drain_async_writes(timeout)
            for transport in self._providers()
        )

    def close(self) -> None:
        for transport in self._providers():
            transport.close()


def split_documents_and_indexes(document_provider: Transport,
                                index_provider: Transport
                                ) -> MultiCloudTransport:
    """The canonical two-provider split: documents with one provider,
    every secure index with another."""
    return MultiCloudTransport([
        (documents_rule, document_provider),
        (indexes_rule, index_provider),
        (lambda service: True, index_provider),  # admin et al.
    ])
