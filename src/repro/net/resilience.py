"""Resilience: retries, timeouts, backoff and circuit breaking.

A production gateway cannot assume every RPC succeeds — the deployment
view (Fig. 3) crosses the public internet to several cloud providers.
:class:`ResilientTransport` wraps any inner transport with:

* a configurable :class:`RetryPolicy` — bounded attempts, exponential
  backoff with jitter, and an optional per-call deadline;
* a per-endpoint :class:`CircuitBreaker` — after enough consecutive
  transport faults, calls fail fast with
  :class:`repro.errors.CircuitOpenError` until a reset timeout elapses
  (half-open probe, then close on success), which both sheds load from a
  struggling provider and gives :class:`repro.net.multicloud
  .MultiCloudTransport` its failover signal;
* idempotency keys: mutating requests are stamped with a unique ``idem``
  key *once per logical call*, so every retry re-sends the same key and
  the cloud's dedup window (:class:`repro.net.rpc.ServiceHost`) applies
  the write at most once — at-least-once delivery becomes exactly-once
  application for DET/Mitra/BIEX/stateless index updates and document
  writes.

Error classification: :class:`repro.errors.RemoteError` means the cloud
*executed* the request and raised — that is an application failure, not
a delivery failure, so it is never retried (and counts as endpoint
health for the breaker).  Every other :class:`~repro.errors
.TransportError` (and ``OSError``) is a delivery failure and retryable.
Exhausted retries raise :class:`repro.errors.RetryExhausted`; a blown
deadline raises :class:`repro.errors.DeadlineExceeded`.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Sequence

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    RemoteError,
    RetryExhausted,
    TransportError,
)
from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport

#: RPC method names that mutate cloud state.  These get idempotency keys
#: so a retried (or network-duplicated) delivery is applied at most
#: once; reads are naturally idempotent and stay unkeyed.  The set is a
#: superset of :data:`repro.net.batch.DEFERRABLE_METHODS` — every write
#: the executor, the docstore and the tactic cloud halves expose.
MUTATING_METHODS = frozenset({
    "insert",
    "insert_many",
    "insert_terms",
    "update",
    "update_terms",
    "delete",
    "delete_terms",
    "replace",
    "upsert",
    "add",
    "remove",
})


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff, jitter and a deadline.

    The delay before retry *n* (1-based) is
    ``min(max_delay, base_delay * multiplier**(n-1))``, scaled by a
    uniform jitter in ``[1-jitter, 1+jitter]`` to de-synchronise
    retrying clients.  ``deadline`` bounds one logical call end to end:
    a retry that cannot start before the deadline raises
    :class:`repro.errors.DeadlineExceeded` instead of sleeping.
    ``sleep=False`` keeps the schedule purely accounted (fast tests).
    """

    max_attempts: int = 4
    base_delay: float = 0.02
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline: float | None = None
    sleep: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """Single attempt — the chaos suite's ablation baseline."""
        return cls(max_attempts=1, sleep=False)

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay (seconds) before retrying after failed ``attempt``."""
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter > 0:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning for one endpoint."""

    #: Consecutive transport faults that open the circuit.
    failure_threshold: int = 5
    #: Seconds the circuit stays open before a half-open probe.
    reset_timeout: float = 30.0


class CircuitBreaker:
    """Classic closed → open → half-open breaker for one endpoint.

    Closed: calls pass; consecutive failures are counted and a success
    resets the count.  Open: calls are rejected without touching the
    wire until ``reset_timeout`` elapses.  Half-open: one probe call is
    let through; success closes the circuit, failure re-opens it.
    """

    def __init__(self, config: BreakerConfig | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def opens(self) -> int:
        """How many times the circuit has opened (degradation metric)."""
        with self._lock:
            return self._opens

    def allow(self) -> bool:
        """May a call proceed right now?  (May transition to half-open.)"""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if (self._clock() - self._opened_at
                        >= self.config.reset_timeout):
                    self._state = "half-open"
                    return True
                return False
            # half-open: a probe is already in flight; fail fast until
            # its outcome settles the state.
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == "half-open":
                self._trip()
                return
            self._failures += 1
            if (self._state == "closed"
                    and self._failures >= self.config.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        self._state = "open"
        self._failures = 0
        self._opened_at = self._clock()
        self._opens += 1


@dataclass(frozen=True)
class ResilienceConfig:
    """One knob for the whole resilience layer (middleware wiring)."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Seed for the jitter RNG (deterministic backoff in tests).
    seed: int | None = None
    #: The idempotency dedup window the untrusted zone's
    #: :class:`repro.net.rpc.ServiceHost` must honour for this
    #: deployment's retries to stay exactly-once: it bounds the keyed
    #: responses each host remembers (LRU), and must exceed the number
    #: of keyed writes a gateway can have in flight between a fault and
    #: its retry.  Deployment code hands the same config to
    #: :class:`repro.cloud.server.CloudZone` /
    #: :class:`repro.cloud.cluster.CloudCluster` so both zones agree.
    dedup_window: int = 1024


class ResilientTransport(Transport):
    """Retry/timeout/backoff + circuit-breaker wrapper for one endpoint.

    Wrap each *provider* transport (below any
    :class:`~repro.net.batch.BatchCollector`, above any
    :class:`~repro.net.faults.FaultInjectingTransport`): the breaker is
    per endpoint, and write batches are retried whole — their keyed
    sub-requests make the re-delivery safe.
    """

    def __init__(self, inner: Transport,
                 policy: RetryPolicy | None = None,
                 breaker: BreakerConfig | CircuitBreaker | None = None,
                 seed: int | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep_fn: Callable[[float], None] = time.sleep):
        self._inner = inner
        self.policy = policy or RetryPolicy()
        self.breaker = (breaker if isinstance(breaker, CircuitBreaker)
                        else CircuitBreaker(breaker, clock))
        self._rng = random.Random(seed)
        self._clock = clock
        self._sleep = sleep_fn
        self._retries = 0
        self._lock = threading.Lock()
        self._key_prefix = secrets.token_hex(6)
        self._key_counter = itertools.count(1)

    @property
    def inner(self) -> Transport:
        return self._inner

    # -- idempotency keys --------------------------------------------------

    def _mint_key(self) -> str:
        return f"{self._key_prefix}-{next(self._key_counter)}"

    def _keyed(self, request: Request) -> Request:
        """Stamp a mutating request with a fresh idempotency key.

        Minted once per *logical* call, before the first attempt, so
        every retry re-sends the same key and the cloud applies the
        write at most once.  Already-keyed requests pass unchanged.
        """
        if request.idem or request.method not in MUTATING_METHODS:
            return request
        return Request(request.service, request.method, request.kwargs,
                       idem=self._mint_key())

    # -- retry loop --------------------------------------------------------

    def _execute(self, operation: Callable[[], Any], label: str) -> Any:
        policy = self.policy
        start = self._clock()
        last: Exception | None = None
        attempts = 0
        for attempt in range(1, policy.max_attempts + 1):
            if not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for endpoint; rejecting {label}"
                )
            attempts = attempt
            try:
                result = operation()
            except RemoteError:
                # The cloud executed the request: the endpoint is
                # healthy and the failure is the application's.
                self.breaker.record_success()
                raise
            except (TransportError, OSError) as exc:
                self.breaker.record_failure()
                last = exc
                if attempt >= policy.max_attempts:
                    break
                delay = policy.backoff(attempt, self._rng)
                if policy.deadline is not None and (
                    self._clock() - start + delay > policy.deadline
                ):
                    raise DeadlineExceeded(
                        f"{label}: deadline of {policy.deadline}s would "
                        f"elapse before retry {attempt + 1} ({exc})"
                    ) from exc
                if policy.sleep and delay > 0:
                    self._sleep(delay)
                with self._lock:
                    self._retries += 1
            else:
                self.breaker.record_success()
                return result
        raise RetryExhausted(attempts, last) from last

    async def _execute_async(
        self, operation: Callable[[], Awaitable[Any]], label: str
    ) -> Any:
        """The same retry loop with loop-yielding backoff sleeps.

        Classification, breaker bookkeeping and key reuse are identical
        to :meth:`_execute`; only the waits differ — ``asyncio.sleep``
        instead of parking a thread, so hundreds of operations can back
        off concurrently on one loop.
        """
        policy = self.policy
        start = self._clock()
        last: Exception | None = None
        attempts = 0
        for attempt in range(1, policy.max_attempts + 1):
            if not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for endpoint; rejecting {label}"
                )
            attempts = attempt
            try:
                result = await operation()
            except RemoteError:
                self.breaker.record_success()
                raise
            except (TransportError, OSError) as exc:
                self.breaker.record_failure()
                last = exc
                if attempt >= policy.max_attempts:
                    break
                delay = policy.backoff(attempt, self._rng)
                if policy.deadline is not None and (
                    self._clock() - start + delay > policy.deadline
                ):
                    raise DeadlineExceeded(
                        f"{label}: deadline of {policy.deadline}s would "
                        f"elapse before retry {attempt + 1} ({exc})"
                    ) from exc
                if policy.sleep and delay > 0:
                    await asyncio.sleep(delay)
                with self._lock:
                    self._retries += 1
            else:
                self.breaker.record_success()
                return result
        raise RetryExhausted(attempts, last) from last

    # -- Transport interface -----------------------------------------------

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        request = self._keyed(request)
        label = f"{request.service}.{request.method}"
        return self._execute(
            lambda: self._inner.call_request(request), label
        )

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        if not requests:
            return []
        keyed = [self._keyed(request) for request in requests]
        label = f"batch[{len(keyed)}]"
        return self._execute(
            lambda: self._inner.call_batch(keyed), label
        )

    async def call_request_async(self, request: Request) -> Any:
        request = self._keyed(request)
        label = f"{request.service}.{request.method}"
        return await self._execute_async(
            lambda: self._inner.call_request_async(request), label
        )

    async def call_batch_async(
        self, requests: Sequence[Request]
    ) -> list[Response]:
        if not requests:
            return []
        keyed = [self._keyed(request) for request in requests]
        label = f"batch[{len(keyed)}]"
        return await self._execute_async(
            lambda: self._inner.call_batch_async(keyed), label
        )

    def stats(self) -> NetworkStats:
        with self._lock:
            own = NetworkStats(retries=self._retries,
                               breaker_opens=self.breaker.opens)
        return self._inner.stats().merge(own)

    def labeled_stats(self) -> dict[str, NetworkStats]:
        labeled = dict(self._inner.labeled_stats())
        with self._lock:
            own = NetworkStats(retries=self._retries,
                               breaker_opens=self.breaker.opens)
        if len(labeled) == 1:
            # One endpoint below: fold our counters into its line.
            label, stats = next(iter(labeled.items()))
            return {label: stats.merge(own)}
        labeled["resilience"] = own
        return labeled

    def call_labeled(self, service: str, method: str,
                     **kwargs: Any) -> dict[str, Any]:
        return self._inner.call_labeled(service, method, **kwargs)

    def topology_epoch(self) -> int:
        return self._inner.topology_epoch()

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        return self._inner.drain_shard_timings()

    def drain_async_writes(self, timeout: float | None = None) -> int:
        return self._inner.drain_async_writes(timeout)

    def close(self) -> None:
        self._inner.close()


def wrap_resilient(transport: Transport,
                   config: ResilienceConfig | None) -> Transport:
    """Middleware wiring helper: wrap unless already resilient or off."""
    if config is None or isinstance(transport, ResilientTransport):
        return transport
    return ResilientTransport(transport, config.retry, config.breaker,
                              seed=config.seed)
