"""TCP transport: a real two-process gateway/cloud deployment.

Frames are length-prefixed (4-byte big-endian) wire-codec payloads; a
payload is either a single request or a ``batch`` frame carrying several
requests answered with one batch reply (per-request error isolation).
The server hosts a :class:`repro.net.rpc.ServiceHost` behind a threading
TCP server; the client implements
:class:`repro.net.transport.Transport` with one pooled connection per
thread.  ``examples/distributed_deployment.py`` uses this pair to run the
cloud zone as an actual separate process.
"""

from __future__ import annotations

import asyncio
import socket
import socketserver
import struct
import threading
from typing import Any, Sequence

from repro.errors import TransportError
from repro.net.latency import NetworkStats, TrafficMeter
from repro.net.message import decode, encode
from repro.net.transport import Transport
from repro.net.rpc import (
    Request,
    Response,
    ServiceHost,
    batch_request_payload,
    batch_response_payload,
    is_batch_payload,
    requests_from_batch,
    responses_from_batch,
)

_HEADER = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024


def send_frame(sock: socket.socket, payload: bytes) -> None:
    if len(payload) > MAX_FRAME:
        raise TransportError("frame exceeds maximum size")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise TransportError("incoming frame exceeds maximum size")
    return _recv_exact(sock, length)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _RpcHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        host: ServiceHost = self.server.service_host  # type: ignore[attr-defined]
        while True:
            try:
                frame = recv_frame(self.request)
            except TransportError:
                return  # client went away
            try:
                payload = decode(frame)
                if is_batch_payload(payload):
                    # Batch frame: dispatch every sub-request (error
                    # isolation lives in dispatch_batch) and answer with
                    # one batch reply frame.
                    responses = host.dispatch_batch(
                        requests_from_batch(payload)
                    )
                    reply = encode(batch_response_payload(responses))
                else:
                    response = host.dispatch(Request.from_payload(payload))
                    reply = encode(response.to_payload())
            except Exception as exc:  # noqa: BLE001 - keep the server alive
                response = Response(ok=False, error_type=type(exc).__name__,
                                    error_message=str(exc))
                reply = encode(response.to_payload())
            send_frame(self.request, reply)


class TcpRpcServer(socketserver.ThreadingTCPServer):
    """Threaded RPC server for the untrusted zone."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, host: ServiceHost, address: tuple[str, int] = ("127.0.0.1", 0)):
        super().__init__(address, _RpcHandler)
        self.service_host = host

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.socket.getsockname()

    def serve_in_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


class TcpTransport(Transport):
    """Client side: one pooled connection per calling thread."""

    def __init__(self, address: tuple[str, int], timeout: float = 30.0):
        self._address = address
        self._timeout = timeout
        self._local = threading.local()
        self._meter = TrafficMeter()
        self._closed = False
        # Native-async connections, pooled per event loop the way the
        # blocking path pools per thread.  The wire protocol is strictly
        # request/reply per connection, so each concurrent in-flight
        # call checks a stream pair out of the loop's free list (opening
        # a new connection when the list is empty) and returns it after
        # the reply — N concurrent tasks ride N sockets, never one.
        self._async_pool: dict[
            int, list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        ] = {}

    def _connection(self) -> socket.socket:
        sock = getattr(self._local, "sock", None)
        if sock is None:
            sock = socket.create_connection(self._address, self._timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.sock = sock
        return sock

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        reply = self._roundtrip(encode(request.to_payload()))
        return Response.from_payload(decode(reply)).unwrap()

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        """Ship the whole batch as one frame over the pooled socket."""
        if not requests:
            return []
        frame = encode(batch_request_payload(list(requests)))
        reply = self._roundtrip(frame)
        return responses_from_batch(decode(reply))

    def _roundtrip(self, frame: bytes) -> bytes:
        if self._closed:
            raise TransportError("transport is closed")
        # One transparent reconnect: a pooled connection may have died
        # between calls (server restart, idle timeout); retrying on a
        # fresh socket is safe because no reply was consumed yet.
        for attempt in (1, 2):
            sock = self._connection()
            try:
                send_frame(sock, frame)
                reply = recv_frame(sock)
                break
            except (OSError, TransportError) as exc:
                self._drop_connection()
                if attempt == 2:
                    raise TransportError(
                        f"rpc transport failure: {exc}"
                    ) from exc
        self._meter.record_send(len(frame))
        self._meter.record_receive(len(reply))
        return reply

    # -- native async client path -------------------------------------------------

    async def call_request_async(self, request: Request) -> Any:
        reply = await self._roundtrip_async(encode(request.to_payload()))
        return Response.from_payload(decode(reply)).unwrap()

    async def call_batch_async(
        self, requests: Sequence[Request]
    ) -> list[Response]:
        if not requests:
            return []
        frame = encode(batch_request_payload(list(requests)))
        reply = await self._roundtrip_async(frame)
        return responses_from_batch(decode(reply))

    async def _checkout(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        pool = self._async_pool.setdefault(
            id(asyncio.get_running_loop()), []
        )
        if pool:
            return pool.pop()
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(*self._address), self._timeout
        )
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return reader, writer

    def _checkin(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._async_pool.setdefault(
            id(asyncio.get_running_loop()), []
        ).append((reader, writer))

    async def _roundtrip_async(self, frame: bytes) -> bytes:
        if self._closed:
            raise TransportError("transport is closed")
        if len(frame) > MAX_FRAME:
            raise TransportError("frame exceeds maximum size")
        # Same transparent reconnect-once contract as the blocking path:
        # a pooled stream may have died between calls, and no reply has
        # been consumed yet when the send/receive fails.
        for attempt in (1, 2):
            reader, writer = await self._checkout()
            try:
                writer.write(_HEADER.pack(len(frame)) + frame)
                await writer.drain()
                header = await asyncio.wait_for(
                    reader.readexactly(_HEADER.size), self._timeout
                )
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME:
                    raise TransportError(
                        "incoming frame exceeds maximum size"
                    )
                reply = await asyncio.wait_for(
                    reader.readexactly(length), self._timeout
                )
                self._checkin(reader, writer)
                break
            except (OSError, EOFError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, TransportError) as exc:
                writer.close()
                if attempt == 2:
                    raise TransportError(
                        f"rpc transport failure: {exc}"
                    ) from exc
        self._meter.record_send(len(frame))
        self._meter.record_receive(len(reply))
        return reply

    def _drop_connection(self) -> None:
        sock = getattr(self._local, "sock", None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self._local.sock = None

    def stats(self) -> NetworkStats:
        return self._meter.snapshot()

    def close(self) -> None:
        self._closed = True
        sock = getattr(self._local, "sock", None)
        if sock is not None:
            sock.close()
            self._local.sock = None
        for conns in self._async_pool.values():
            for _, writer in conns:
                try:
                    writer.close()
                except RuntimeError:
                    pass  # the owning loop is already gone
        self._async_pool.clear()
