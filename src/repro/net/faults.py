"""Fault injection: a chaos harness for the gateway <-> cloud link.

The paper's deployment spans a trusted gateway and *multiple* untrusted
providers; a production gateway therefore has to survive dropped frames,
slow links, broken connections, duplicated deliveries and corrupt
replies.  :class:`FaultInjectingTransport` wraps any inner
:class:`repro.net.transport.Transport` and injects exactly those faults,
*deterministically* from a seed, for both single calls and batch frames
— so a failing chaos run is reproducible from its seed and fault log
alone.

Fault taxonomy (at most one fault per delivery, chosen by one seeded
draw so schedules are stable under refactoring):

===============  ============================================  =========
kind             wire meaning                                  applied?
===============  ============================================  =========
``drop``         request frame lost in flight                  no
``corrupt``      request frame mangled; peer cannot decode it  no
``disconnect``   connection died after dispatch; reply lost    yes
``duplicate``    frame delivered twice (network duplication)   twice
``delay``        frame delayed by ``delay_seconds``            yes
===============  ============================================  =========

"applied?" is what makes the taxonomy matter: ``drop``/``corrupt``
faults are safe to blindly retry, while ``disconnect`` means the cloud
*did* execute the request and only the idempotency-key dedup window
(:class:`repro.net.rpc.ServiceHost`) makes a retry safe, and
``duplicate`` exercises the same window without any client retry.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import TransportFault
from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport

FAULT_KINDS = ("drop", "corrupt", "disconnect", "duplicate", "delay")


@dataclass(frozen=True)
class FaultPlan:
    """Per-delivery fault probabilities (must sum to at most 1).

    One uniform draw per delivery is compared against the cumulative
    probabilities in :data:`FAULT_KINDS` order, so at most one fault
    fires per frame and the schedule is a pure function of the seed and
    the call sequence.
    """

    drop: float = 0.0
    corrupt: float = 0.0
    disconnect: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    #: Added one-way delay when a ``delay`` fault fires.
    delay_seconds: float = 0.0
    #: Whether the injected delay is actually slept (wall-clock chaos
    #: runs) or only accounted (fast unit tests).
    sleep: bool = False

    def __post_init__(self) -> None:
        total = (self.drop + self.corrupt + self.disconnect
                 + self.duplicate + self.delay)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault probabilities sum to {total}, must be <= 1"
            )
        for kind in FAULT_KINDS:
            if getattr(self, kind) < 0:
                raise ValueError(f"negative probability for {kind!r}")

    def probability(self, kind: str) -> float:
        return float(getattr(self, kind))


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded for reproduction artifacts."""

    seq: int          #: delivery index on this transport (0-based)
    kind: str         #: one of :data:`FAULT_KINDS`
    op: str           #: ``"call"`` or ``"batch"``
    target: str       #: ``service.method`` or ``batch[n]``

    def to_payload(self) -> dict[str, Any]:
        return {"seq": self.seq, "kind": self.kind, "op": self.op,
                "target": self.target}


class FaultInjectingTransport(Transport):
    """Deterministic (seeded) chaos wrapper around any transport.

    Faults are injected client-side around the inner transport, which
    models the link rather than the peer: a ``drop`` never reaches the
    inner transport, a ``disconnect`` completes the inner dispatch and
    then loses the reply, a ``duplicate`` performs the inner dispatch
    twice.  Works identically over :class:`~repro.net.transport.InProcTransport`
    and :class:`~repro.net.tcp.TcpTransport`.
    """

    def __init__(self, inner: Transport, plan: FaultPlan,
                 seed: int = 0):
        self._inner = inner
        self._plan = plan
        self._seed = seed
        self._rng = random.Random(seed)
        self._events: list[FaultEvent] = []
        self._deliveries = 0
        self._injected_delay = 0.0
        self._lock = threading.Lock()

    @property
    def inner(self) -> Transport:
        return self._inner

    @property
    def seed(self) -> int:
        return self._seed

    # -- schedule ----------------------------------------------------------

    def _next_fault(self, op: str, target: str) -> str | None:
        """One seeded draw decides this delivery's fault (or none)."""
        with self._lock:
            seq = self._deliveries
            self._deliveries += 1
            draw = self._rng.random()
            for kind in FAULT_KINDS:
                probability = self._plan.probability(kind)
                if draw < probability:
                    self._events.append(FaultEvent(seq, kind, op, target))
                    return kind
                draw -= probability
            return None

    def events(self) -> list[FaultEvent]:
        """Every fault injected so far (for assertions and artifacts)."""
        with self._lock:
            return list(self._events)

    def fault_count(self, *kinds: str) -> int:
        with self._lock:
            if not kinds:
                return len(self._events)
            return sum(1 for e in self._events if e.kind in kinds)

    def schedule_json(self) -> str:
        """The reproduction artifact: seed, plan and fired faults."""
        with self._lock:
            return json.dumps({
                "seed": self._seed,
                "plan": {kind: self._plan.probability(kind)
                         for kind in FAULT_KINDS},
                "deliveries": self._deliveries,
                "events": [e.to_payload() for e in self._events],
            }, indent=2, sort_keys=True)

    # -- fault application -------------------------------------------------

    def _delay(self) -> None:
        with self._lock:
            self._injected_delay += self._plan.delay_seconds
        if self._plan.sleep and self._plan.delay_seconds > 0:
            time.sleep(self._plan.delay_seconds)

    # -- Transport interface -----------------------------------------------

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        target = f"{request.service}.{request.method}"
        kind = self._next_fault("call", target)
        if kind == "drop":
            raise TransportFault(f"injected fault: request {target} "
                                 f"dropped in flight")
        if kind == "corrupt":
            raise TransportFault(f"injected fault: request {target} "
                                 f"frame corrupt, rejected by peer")
        if kind == "delay":
            self._delay()
            return self._inner.call_request(request)
        if kind == "duplicate":
            self._inner.call_request(request)
            return self._inner.call_request(request)
        if kind == "disconnect":
            self._inner.call_request(request)
            raise TransportFault(f"injected fault: connection lost after "
                                 f"{target} was delivered; reply lost")
        return self._inner.call_request(request)

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        if not requests:
            return []
        target = f"batch[{len(requests)}]"
        kind = self._next_fault("batch", target)
        if kind == "drop":
            raise TransportFault(f"injected fault: {target} frame "
                                 f"dropped in flight")
        if kind == "corrupt":
            raise TransportFault(f"injected fault: {target} frame "
                                 f"corrupt, rejected by peer")
        if kind == "delay":
            self._delay()
            return self._inner.call_batch(requests)
        if kind == "duplicate":
            self._inner.call_batch(requests)
            return self._inner.call_batch(requests)
        if kind == "disconnect":
            self._inner.call_batch(requests)
            raise TransportFault(f"injected fault: connection lost after "
                                 f"{target} was delivered; reply lost")
        return self._inner.call_batch(requests)

    def stats(self) -> NetworkStats:
        with self._lock:
            own = NetworkStats(
                simulated_delay_seconds=self._injected_delay,
                faults_injected=len(self._events),
            )
        return self._inner.stats().merge(own)

    def labeled_stats(self) -> dict[str, NetworkStats]:
        labeled = dict(self._inner.labeled_stats())
        with self._lock:
            own = NetworkStats(
                simulated_delay_seconds=self._injected_delay,
                faults_injected=len(self._events),
            )
        if len(labeled) == 1:
            label, stats = next(iter(labeled.items()))
            return {label: stats.merge(own)}
        labeled["faults"] = own
        return labeled

    def topology_epoch(self) -> int:
        return self._inner.topology_epoch()

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        return self._inner.drain_shard_timings()

    def drain_async_writes(self, timeout: float | None = None) -> int:
        return self._inner.drain_async_writes(timeout)

    def close(self) -> None:
        self._inner.close()
