"""Fault injection: a chaos harness for the gateway <-> cloud link.

The paper's deployment spans a trusted gateway and *multiple* untrusted
providers; a production gateway therefore has to survive dropped frames,
slow links, broken connections, duplicated deliveries and corrupt
replies.  :class:`FaultInjectingTransport` wraps any inner
:class:`repro.net.transport.Transport` and injects exactly those faults,
*deterministically* from a seed, for both single calls and batch frames
— so a failing chaos run is reproducible from its seed and fault log
alone.

Fault taxonomy (at most one fault per delivery, chosen by one seeded
draw so schedules are stable under refactoring):

===============  ============================================  =========
kind             wire meaning                                  applied?
===============  ============================================  =========
``drop``         request frame lost in flight                  no
``corrupt``      request frame mangled; peer cannot decode it  no
``disconnect``   connection died after dispatch; reply lost    yes
``duplicate``    frame delivered twice (network duplication)   twice
``delay``        frame delayed by ``delay_seconds``            yes
``tamper``       adversary mutated a fetched document reply    yes
``rollback``     adversary replayed an old (valid) reply       yes
===============  ============================================  =========

"applied?" is what makes the taxonomy matter: ``drop``/``corrupt``
faults are safe to blindly retry, while ``disconnect`` means the cloud
*did* execute the request and only the idempotency-key dedup window
(:class:`repro.net.rpc.ServiceHost`) makes a retry safe, and
``duplicate`` exercises the same window without any client retry.

``tamper`` and ``rollback`` model the *untrusted-provider* adversary of
the integrity subsystem rather than a flaky link: ``tamper`` flips one
bit in a proven document read's reply, ``rollback`` re-serves the
earliest previously captured reply for the same request once the stored
document has actually changed.  Both are recorded in :meth:`events`
only when they actually mutate a delivery — a draw that lands on a
non-document call, an empty reply, or an unchanged document is a no-op
— so the chaos invariant "every recorded event surfaces as a typed
:class:`repro.errors.IntegrityError`" is exact, not probabilistic.
"""

from __future__ import annotations

import copy
import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import TransportFault
from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport

FAULT_KINDS = ("drop", "corrupt", "disconnect", "duplicate", "delay",
               "tamper", "rollback")

#: Kinds recorded only when they actually mutate a delivery (see the
#: module docstring); the seeded draw alone does not make an event.
APPLY_TIME_KINDS = frozenset({"tamper", "rollback"})

#: Document reads whose replies carry integrity envelopes — the only
#: deliveries ``tamper``/``rollback`` ever touch.
_PROTECTED_READS = frozenset({"get_proven", "get_many_proven"})


@dataclass(frozen=True)
class FaultPlan:
    """Per-delivery fault probabilities (must sum to at most 1).

    One uniform draw per delivery is compared against the cumulative
    probabilities in :data:`FAULT_KINDS` order, so at most one fault
    fires per frame and the schedule is a pure function of the seed and
    the call sequence.
    """

    drop: float = 0.0
    corrupt: float = 0.0
    disconnect: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    tamper: float = 0.0
    rollback: float = 0.0
    #: Added one-way delay when a ``delay`` fault fires.
    delay_seconds: float = 0.0
    #: Whether the injected delay is actually slept (wall-clock chaos
    #: runs) or only accounted (fast unit tests).
    sleep: bool = False

    def __post_init__(self) -> None:
        total = (self.drop + self.corrupt + self.disconnect
                 + self.duplicate + self.delay
                 + self.tamper + self.rollback)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault probabilities sum to {total}, must be <= 1"
            )
        for kind in FAULT_KINDS:
            if getattr(self, kind) < 0:
                raise ValueError(f"negative probability for {kind!r}")

    def probability(self, kind: str) -> float:
        return float(getattr(self, kind))


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded for reproduction artifacts."""

    seq: int          #: delivery index on this transport (0-based)
    kind: str         #: one of :data:`FAULT_KINDS`
    op: str           #: ``"call"`` or ``"batch"``
    target: str       #: ``service.method`` or ``batch[n]``

    def to_payload(self) -> dict[str, Any]:
        return {"seq": self.seq, "kind": self.kind, "op": self.op,
                "target": self.target}


class FaultInjectingTransport(Transport):
    """Deterministic (seeded) chaos wrapper around any transport.

    Faults are injected client-side around the inner transport, which
    models the link rather than the peer: a ``drop`` never reaches the
    inner transport, a ``disconnect`` completes the inner dispatch and
    then loses the reply, a ``duplicate`` performs the inner dispatch
    twice.  Works identically over :class:`~repro.net.transport.InProcTransport`
    and :class:`~repro.net.tcp.TcpTransport`.
    """

    def __init__(self, inner: Transport, plan: FaultPlan,
                 seed: int = 0):
        self._inner = inner
        self._plan = plan
        self._seed = seed
        self._rng = random.Random(seed)
        self._events: list[FaultEvent] = []
        self._deliveries = 0
        self._injected_delay = 0.0
        #: Earliest reply seen per proven-read signature: the material a
        #: ``rollback`` fault replays once the stored document changed.
        self._captures: dict[str, Any] = {}
        self._lock = threading.Lock()

    @property
    def inner(self) -> Transport:
        return self._inner

    @property
    def seed(self) -> int:
        return self._seed

    # -- schedule ----------------------------------------------------------

    def _next_fault(self, op: str, target: str) -> tuple[int, str | None]:
        """One seeded draw decides this delivery's fault (or none).

        Returns ``(seq, kind)``.  Link faults are recorded immediately;
        :data:`APPLY_TIME_KINDS` are recorded by the caller via
        :meth:`_record` only once they actually mutate the delivery.
        """
        with self._lock:
            seq = self._deliveries
            self._deliveries += 1
            draw = self._rng.random()
            for kind in FAULT_KINDS:
                probability = self._plan.probability(kind)
                if draw < probability:
                    if kind not in APPLY_TIME_KINDS:
                        self._events.append(
                            FaultEvent(seq, kind, op, target)
                        )
                    return seq, kind
                draw -= probability
            return seq, None

    def _record(self, seq: int, kind: str, op: str, target: str) -> None:
        with self._lock:
            self._events.append(FaultEvent(seq, kind, op, target))

    def events(self) -> list[FaultEvent]:
        """Every fault injected so far (for assertions and artifacts)."""
        with self._lock:
            return list(self._events)

    def fault_count(self, *kinds: str) -> int:
        with self._lock:
            if not kinds:
                return len(self._events)
            return sum(1 for e in self._events if e.kind in kinds)

    def schedule_json(self) -> str:
        """The reproduction artifact: seed, plan and fired faults."""
        with self._lock:
            return json.dumps({
                "seed": self._seed,
                "plan": {kind: self._plan.probability(kind)
                         for kind in FAULT_KINDS},
                "deliveries": self._deliveries,
                "events": [e.to_payload() for e in self._events],
            }, indent=2, sort_keys=True)

    # -- fault application -------------------------------------------------

    def _delay(self) -> None:
        with self._lock:
            self._injected_delay += self._plan.delay_seconds
        if self._plan.sleep and self._plan.delay_seconds > 0:
            time.sleep(self._plan.delay_seconds)

    # -- adversarial (integrity) faults ------------------------------------

    @staticmethod
    def _eligible(request: Request) -> bool:
        return (request.service.startswith("docs/")
                and request.method in _PROTECTED_READS)

    @staticmethod
    def _signature(request: Request) -> str:
        return (f"{request.service}.{request.method}:"
                f"{sorted(request.kwargs.items())!r}")

    def _capture(self, request: Request, result: Any) -> None:
        """Remember the earliest reply per proven-read signature."""
        if not self._eligible(request) or result is None:
            return
        signature = self._signature(request)
        with self._lock:
            if signature not in self._captures:
                self._captures[signature] = copy.deepcopy(result)

    def _dispatch(self, request: Request) -> Any:
        result = self._inner.call_request(request)
        self._capture(request, result)
        return result

    def _dispatch_batch(self,
                        requests: Sequence[Request]) -> list[Response]:
        responses = self._inner.call_batch(requests)
        for request, response in zip(requests, responses):
            if response.ok:
                self._capture(request, response.result)
        return responses

    @classmethod
    def _flip_leaf(cls, container: Any) -> bool:
        """Flip one bit in the first mutable leaf; True when mutated."""
        items: Any
        if isinstance(container, dict):
            items = list(container.items())
        elif isinstance(container, list):
            items = list(enumerate(container))
        else:
            return False
        for key, value in items:
            if isinstance(value, bytes) and value:
                container[key] = bytes([value[0] ^ 1]) + value[1:]
                return True
            if isinstance(value, str) and value:
                container[key] = chr(ord(value[0]) ^ 1) + value[1:]
                return True
            if isinstance(value, bool):
                container[key] = not value
                return True
            if isinstance(value, (int, float)):
                container[key] = value + 1
                return True
            if isinstance(value, (dict, list)) and cls._flip_leaf(value):
                return True
        return False

    @classmethod
    def _apply_tamper(cls, result: Any) -> bool:
        """Mutate one proven-read envelope in place; True when applied.

        Prefers flipping a bit inside the document payload (defeated by
        the inclusion proof); falls back to the reported root (defeated
        by the freshness ledger).  Tuple/set-only documents fall through
        to the root flip, so an applied tamper is always detectable.
        """
        envelopes = result if isinstance(result, list) else [result]
        for envelope in envelopes:
            if not isinstance(envelope, dict):
                continue
            document = envelope.get("document")
            if isinstance(document, dict) and cls._flip_leaf(document):
                return True
            root = envelope.get("root")
            if isinstance(root, str) and root:
                envelope["root"] = chr(ord(root[0]) ^ 1) + root[1:]
                return True
        return False

    def _apply_rollback(self, request: Request,
                        result: Any) -> tuple[Any, bool]:
        """Replay the earliest differing capture for this request."""
        if not self._eligible(request):
            return result, False
        with self._lock:
            captured = self._captures.get(self._signature(request))
        if captured is None or captured == result:
            return result, False
        return copy.deepcopy(captured), True

    # -- Transport interface -----------------------------------------------

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        target = f"{request.service}.{request.method}"
        seq, kind = self._next_fault("call", target)
        if kind == "drop":
            raise TransportFault(f"injected fault: request {target} "
                                 f"dropped in flight")
        if kind == "corrupt":
            raise TransportFault(f"injected fault: request {target} "
                                 f"frame corrupt, rejected by peer")
        if kind == "delay":
            self._delay()
            return self._dispatch(request)
        if kind == "duplicate":
            self._dispatch(request)
            return self._dispatch(request)
        if kind == "disconnect":
            self._dispatch(request)
            raise TransportFault(f"injected fault: connection lost after "
                                 f"{target} was delivered; reply lost")
        if kind == "tamper":
            result = self._dispatch(request)
            if self._eligible(request):
                tampered = copy.deepcopy(result)
                if self._apply_tamper(tampered):
                    self._record(seq, "tamper", "call", target)
                    return tampered
            return result
        if kind == "rollback":
            result = self._dispatch(request)
            replayed, applied = self._apply_rollback(request, result)
            if applied:
                self._record(seq, "rollback", "call", target)
            return replayed
        return self._dispatch(request)

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        if not requests:
            return []
        target = f"batch[{len(requests)}]"
        seq, kind = self._next_fault("batch", target)
        if kind == "drop":
            raise TransportFault(f"injected fault: {target} frame "
                                 f"dropped in flight")
        if kind == "corrupt":
            raise TransportFault(f"injected fault: {target} frame "
                                 f"corrupt, rejected by peer")
        if kind == "delay":
            self._delay()
            return self._dispatch_batch(requests)
        if kind == "duplicate":
            self._dispatch_batch(requests)
            return self._dispatch_batch(requests)
        if kind == "disconnect":
            self._dispatch_batch(requests)
            raise TransportFault(f"injected fault: connection lost after "
                                 f"{target} was delivered; reply lost")
        if kind == "tamper":
            responses = self._dispatch_batch(requests)
            for index, (request, response) in enumerate(
                zip(requests, responses)
            ):
                if not response.ok or not self._eligible(request):
                    continue
                tampered = copy.deepcopy(response.result)
                if self._apply_tamper(tampered):
                    self._record(
                        seq, "tamper", "batch",
                        f"{target}[{index}]="
                        f"{request.service}.{request.method}",
                    )
                    responses = list(responses)
                    responses[index] = Response(ok=True, result=tampered)
                    break
            return responses
        if kind == "rollback":
            responses = self._dispatch_batch(requests)
            for index, (request, response) in enumerate(
                zip(requests, responses)
            ):
                if not response.ok:
                    continue
                replayed, applied = self._apply_rollback(
                    request, response.result
                )
                if applied:
                    self._record(
                        seq, "rollback", "batch",
                        f"{target}[{index}]="
                        f"{request.service}.{request.method}",
                    )
                    responses = list(responses)
                    responses[index] = Response(ok=True, result=replayed)
                    break
            return responses
        return self._dispatch_batch(requests)

    def stats(self) -> NetworkStats:
        with self._lock:
            own = NetworkStats(
                simulated_delay_seconds=self._injected_delay,
                faults_injected=len(self._events),
            )
        return self._inner.stats().merge(own)

    def labeled_stats(self) -> dict[str, NetworkStats]:
        labeled = dict(self._inner.labeled_stats())
        with self._lock:
            own = NetworkStats(
                simulated_delay_seconds=self._injected_delay,
                faults_injected=len(self._events),
            )
        if len(labeled) == 1:
            label, stats = next(iter(labeled.items()))
            return {label: stats.merge(own)}
        labeled["faults"] = own
        return labeled

    def call_labeled(self, service: str, method: str,
                     **kwargs: Any) -> dict[str, Any]:
        # Labeled broadcasts (integrity state reports) bypass fault
        # injection: the chaos schedules target the data path, and a
        # dropped report would only retry — the detection experiments
        # tamper with fetched state, not with the report channel.
        return self._inner.call_labeled(service, method, **kwargs)

    def topology_epoch(self) -> int:
        return self._inner.topology_epoch()

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        return self._inner.drain_shard_timings()

    def drain_async_writes(self, timeout: float | None = None) -> int:
        return self._inner.drain_async_writes(timeout)

    def close(self) -> None:
        self._inner.close()
