"""Transports: how the gateway reaches cloud services.

:class:`InProcTransport` keeps both zones in one process but routes every
call through the full serialize -> latency-model -> dispatch -> serialize
path, so message counts, byte counts and (optionally slept) delays match a
two-host deployment.  :class:`repro.net.tcp.TcpTransport` swaps the middle
for a real socket.  Application code never sees the difference: both
implement :class:`Transport`.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from typing import Any, Sequence

from repro.errors import RemoteError, TransportError
from repro.net.latency import NetworkModel, NetworkStats, TrafficMeter
from repro.net.message import decode, encode
from repro.net.rpc import (
    Request,
    Response,
    ServiceHost,
    batch_request_payload,
    batch_response_payload,
    requests_from_batch,
    responses_from_batch,
)


class Transport(ABC):
    """A channel from the trusted zone to one untrusted endpoint."""

    @abstractmethod
    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        """Invoke ``service.method(**kwargs)`` remotely, return its result."""

    def call_request(self, request: Request) -> Any:
        """Dispatch one prepared :class:`Request`.

        The resilience layer builds requests up front so an idempotency
        key survives every retry of the same logical call.  Transports
        that put requests on a wire override this to preserve the key;
        the base implementation degrades to :meth:`call` (dropping
        ``idem``, which is only a loss of dedup, never of correctness —
        unkeyed requests are applied on every delivery).
        """
        return self.call(request.service, request.method, **request.kwargs)

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        """Ship several requests, returning one response per request.

        Transports that speak batch frames override this to put the whole
        batch in a single wire frame (one latency-model charge); the base
        implementation degrades to sequential calls while keeping the
        per-request error-isolation contract: a failing sub-call becomes
        an error :class:`Response` in its slot, never an exception.  Only
        a link-level :class:`TransportError` (the frame never made it —
        retryable above) aborts the loop.
        """
        responses: list[Response] = []
        for request in requests:
            try:
                result = self.call_request(request)
                responses.append(Response(ok=True, result=result))
            except RemoteError as exc:
                responses.append(Response(
                    ok=False, error_type=exc.remote_type,
                    error_message=exc.remote_message,
                ))
            except TransportError:
                raise  # link failure: the whole batch is undeliverable
            except Exception as exc:  # noqa: BLE001 - isolation contract
                responses.append(Response(
                    ok=False, error_type=type(exc).__name__,
                    error_message=str(exc),
                ))
        return responses

    # -- async call path ---------------------------------------------------------

    async def call_async(self, service: str, method: str,
                         **kwargs: Any) -> Any:
        """Async variant of :meth:`call`.

        The default adapter funnels through :meth:`call_request_async`,
        so a transport only needs to override one async entry point.
        """
        return await self.call_request_async(Request(service, method, kwargs))

    async def call_request_async(self, request: Request) -> Any:
        """Async variant of :meth:`call_request`.

        The default runs the blocking implementation on a worker thread
        (``asyncio.to_thread``), which copies the caller's
        ``contextvars`` context — batch scopes and shard-timing sinks
        follow the operation onto the worker.  Transports with a native
        event-loop wire path override this so WAN waits hold no thread.
        """
        return await asyncio.to_thread(self.call_request, request)

    async def call_batch_async(
        self, requests: Sequence[Request]
    ) -> list[Response]:
        """Async variant of :meth:`call_batch` (same to-thread default)."""
        return await asyncio.to_thread(self.call_batch, list(requests))

    @abstractmethod
    def stats(self) -> NetworkStats:
        """Traffic counters accumulated by this transport."""

    def labeled_stats(self) -> dict[str, NetworkStats]:
        """Stats keyed by endpoint label for the merged roll-up report.

        Wrapper transports override this to surface their inner labels
        (per shard, per provider) plus their own counters, so a nested
        stack reports as one labelled table instead of siloed snapshots;
        :func:`repro.net.latency.roll_up` sums any labelled report back
        into a single :class:`NetworkStats`.
        """
        return {"endpoint": self.stats()}

    def call_labeled(self, service: str, method: str,
                     **kwargs: Any) -> dict[str, Any]:
        """Invoke ``service.method`` on every labelled endpoint and
        return the results keyed by the same labels
        :meth:`labeled_stats` uses.

        The integrity subsystem pulls per-shard state reports with
        this: the sharded router broadcasts and returns one result per
        shard, wrappers delegate inward, and a plain single-endpoint
        transport returns ``{"endpoint": result}``.
        """
        return {"endpoint": self.call(service, method, **kwargs)}

    def topology_epoch(self) -> int:
        """Monotonic counter of untrusted-zone membership changes.

        Non-sharded transports are a fixed topology (epoch 0); the
        sharded router bumps the epoch on node join/leave so the planner
        can invalidate shape-keyed plans.  Wrappers delegate inward.
        """
        return 0

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        """Per-shard call timings accumulated on the calling thread
        since the last drain (empty for non-sharded transports)."""
        return []

    def drain_async_writes(self, timeout: float | None = None) -> int:
        """Wait out replica writes acked before full delivery.

        The sharded router's write quorum returns control while the
        remaining replicas complete in the background; this is the
        durability barrier before fingerprinting state, migrating keys
        or shutting down.  Non-replicating transports have nothing in
        flight and return 0.  Wrappers delegate inward.
        """
        return 0

    def close(self) -> None:
        """Release any underlying resources (default: none)."""


class InProcTransport(Transport):
    """Gateway->cloud channel within one process.

    Every request and response is round-tripped through the wire codec so
    that only wire-encodable data crosses the zone boundary, and the
    network model charges both directions.
    """

    def __init__(self, host: ServiceHost,
                 network: NetworkModel | None = None):
        self._host = host
        self._network = network or NetworkModel(sleep=False)
        self._meter = TrafficMeter()

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        frame = encode(request.to_payload())
        delay_up = self._network.apply(len(frame))
        self._meter.record_send(len(frame), delay_up)

        response = self._host.dispatch(Request.from_payload(decode(frame)))

        reply = encode(response.to_payload())
        delay_down = self._network.apply(len(reply))
        self._meter.record_receive(len(reply), delay_down)
        return Response.from_payload(decode(reply)).unwrap()

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        """N requests in one wire frame: one latency charge per direction."""
        if not requests:
            return []
        frame = encode(batch_request_payload(list(requests)))
        delay_up = self._network.apply(len(frame))
        self._meter.record_send(len(frame), delay_up)

        responses = self._host.dispatch_batch(
            requests_from_batch(decode(frame))
        )

        reply = encode(batch_response_payload(responses))
        delay_down = self._network.apply(len(reply))
        self._meter.record_receive(len(reply), delay_down)
        return responses_from_batch(decode(reply))

    async def call_request_async(self, request: Request) -> Any:
        """Native async single call: latency waits yield the event loop.

        Dispatch itself (tactic/server CPU work) still runs on a worker
        thread so the loop never blocks, but both simulated link
        directions are ``asyncio.sleep`` charges — the point where one
        loop thread multiplexes thousands of in-flight WAN waits.
        """
        frame = encode(request.to_payload())
        delay_up = await self._network.apply_async(len(frame))
        self._meter.record_send(len(frame), delay_up)

        response = await asyncio.to_thread(
            self._host.dispatch, Request.from_payload(decode(frame))
        )

        reply = encode(response.to_payload())
        delay_down = await self._network.apply_async(len(reply))
        self._meter.record_receive(len(reply), delay_down)
        return Response.from_payload(decode(reply)).unwrap()

    async def call_batch_async(
        self, requests: Sequence[Request]
    ) -> list[Response]:
        """Native async batch frame: one loop-yielding charge per direction."""
        if not requests:
            return []
        frame = encode(batch_request_payload(list(requests)))
        delay_up = await self._network.apply_async(len(frame))
        self._meter.record_send(len(frame), delay_up)

        responses = await asyncio.to_thread(
            self._host.dispatch_batch, requests_from_batch(decode(frame))
        )

        reply = encode(batch_response_payload(responses))
        delay_down = await self._network.apply_async(len(reply))
        self._meter.record_receive(len(reply), delay_down)
        return responses_from_batch(decode(reply))

    def stats(self) -> NetworkStats:
        stats = self._meter.snapshot()
        # The host is reachable in-process: fold its idempotency-window
        # evictions into the endpoint's counters so the labelled report
        # surfaces an undersized dedup window next to the retries that
        # depend on it.
        stats.dedup_evictions += self._host.dedup_stats()["evictions"]
        return stats

    def reset_stats(self) -> None:
        self._meter.reset()


class DirectTransport(Transport):
    """Zero-copy dispatch without serialization or latency accounting.

    Used by the S_A baseline scenario (no protection, no middleware cost
    attribution) and by unit tests that do not exercise the wire.
    """

    def __init__(self, host: ServiceHost):
        self._host = host
        self._meter = TrafficMeter()

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        response = self._host.dispatch(request)
        self._meter.record_send(0)
        self._meter.record_receive(0)
        return response.unwrap()

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        if not requests:
            return []
        responses = self._host.dispatch_batch(list(requests))
        self._meter.record_send(0)
        self._meter.record_receive(0)
        return responses

    def stats(self) -> NetworkStats:
        return self._meter.snapshot()
