"""Networking substrate: the gateway <-> cloud link.

Replaces the paper's two-VM OpenStack/public-cloud deployment with an
in-process transport carrying a configurable latency/bandwidth model, and
a real TCP transport for genuine two-process runs.
"""

from repro.net.batch import BatchCollector, PipelineConfig
from repro.net.faults import FaultEvent, FaultInjectingTransport, FaultPlan
from repro.net.latency import NetworkModel, NetworkStats, TrafficMeter
from repro.net.multicloud import (
    MultiCloudTransport,
    split_documents_and_indexes,
)
from repro.net.resilience import (
    BreakerConfig,
    CircuitBreaker,
    ResilienceConfig,
    ResilientTransport,
    RetryPolicy,
    wrap_resilient,
)
from repro.net.rpc import Request, Response, ServiceHost
from repro.net.tcp import TcpRpcServer, TcpTransport
from repro.net.transport import DirectTransport, InProcTransport, Transport

__all__ = [
    "BatchCollector",
    "BreakerConfig",
    "CircuitBreaker",
    "PipelineConfig",
    "DirectTransport",
    "FaultEvent",
    "FaultInjectingTransport",
    "FaultPlan",
    "MultiCloudTransport",
    "split_documents_and_indexes",
    "InProcTransport",
    "NetworkModel",
    "NetworkStats",
    "Request",
    "ResilienceConfig",
    "ResilientTransport",
    "Response",
    "RetryPolicy",
    "ServiceHost",
    "TcpRpcServer",
    "TcpTransport",
    "TrafficMeter",
    "Transport",
    "wrap_resilient",
]
