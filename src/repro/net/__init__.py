"""Networking substrate: the gateway <-> cloud link.

Replaces the paper's two-VM OpenStack/public-cloud deployment with an
in-process transport carrying a configurable latency/bandwidth model, and
a real TCP transport for genuine two-process runs.
"""

from repro.net.batch import BatchCollector, PipelineConfig
from repro.net.latency import NetworkModel, NetworkStats, TrafficMeter
from repro.net.multicloud import (
    MultiCloudTransport,
    split_documents_and_indexes,
)
from repro.net.rpc import Request, Response, ServiceHost
from repro.net.tcp import TcpRpcServer, TcpTransport
from repro.net.transport import DirectTransport, InProcTransport, Transport

__all__ = [
    "BatchCollector",
    "PipelineConfig",
    "DirectTransport",
    "MultiCloudTransport",
    "split_documents_and_indexes",
    "InProcTransport",
    "NetworkModel",
    "NetworkStats",
    "Request",
    "Response",
    "ServiceHost",
    "TcpRpcServer",
    "TcpTransport",
    "TrafficMeter",
    "Transport",
]
