"""Storage substrates: the Redis-like KV store and Mongo-like docstore.

The paper's prototype uses MongoDB/Elasticsearch for documents and Redis
(semi-durable) for custom secure indexes; these modules replace them with
from-scratch equivalents exercising the same code paths.
"""

from repro.stores.docstore import DocumentStore, matches
from repro.stores.kv import KeyValueStore
from repro.stores.persistence import SnapshotStore, WriteAheadLog

__all__ = [
    "DocumentStore",
    "KeyValueStore",
    "SnapshotStore",
    "WriteAheadLog",
    "matches",
]
