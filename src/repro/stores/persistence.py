"""Append-only-log persistence with snapshots ("semi-durable" mode).

The paper deploys Redis "in a semi-persistent durability mode" on both the
gateway and the cloud to hold custom secure indexes.  This module provides
the equivalent durability substrate for :mod:`repro.stores.kv` and
:mod:`repro.stores.docstore`: mutations are appended to a JSON-lines log,
and a snapshot compacts the log when it grows past a threshold.  Stores
replay snapshot + log on open.

Durability is *semi* in the same sense as Redis AOF with relaxed fsync:
the log is buffered and flushed on :meth:`WriteAheadLog.sync`, close, or
every ``flush_every`` records — a crash may lose the tail.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import StoreError

Record = dict[str, Any]


def _encode_bytes(obj: Any) -> Any:
    """Make a record JSON-safe: bytes become tagged hex strings."""
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, dict):
        return {k: _encode_bytes(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode_bytes(v) for v in obj]
    return obj


def _decode_bytes(obj: Any) -> Any:
    if isinstance(obj, dict):
        if set(obj) == {"__bytes__"}:
            return bytes.fromhex(obj["__bytes__"])
        return {k: _decode_bytes(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode_bytes(v) for v in obj]
    return obj


#: Magic key marking a snapshot file that carries its log high-water
#: sequence (snapshots written before this scheme load transparently).
_SEQ_KEY = "__wal_seq__"


class WriteAheadLog:
    """JSON-lines append log with snapshot compaction.

    Every appended record is stamped with a monotonic ``_seq``, and a
    snapshot records the sequence high-water mark it covers.  That pair
    closes the crash window in :meth:`write_snapshot` between replacing
    the snapshot and removing the log: a recovery that finds *both* a
    new snapshot and a stale log skips the already-snapshotted records
    instead of double-applying them (``sadd``/``mput`` are idempotent,
    but ``incr`` is not — SSE posting counters would corrupt).
    """

    def __init__(self, directory: str | Path, name: str = "store",
                 flush_every: int = 256, compact_after: int = 10_000):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log_path = self.directory / f"{name}.log"
        self.snapshot_path = self.directory / f"{name}.snapshot"
        self.flush_every = flush_every
        self.compact_after = compact_after
        self._pending = 0
        self._records_since_snapshot = 0
        self._handle = None
        self._seq = 0
        #: Highest ``_seq`` covered by the loaded snapshot (0 when no
        #: snapshot, or a legacy snapshot without a watermark, exists).
        self.last_snapshot_seq = 0

    # -- write path ---------------------------------------------------------

    def append(self, record: Record) -> None:
        if self._handle is None:
            self._handle = open(self.log_path, "a", encoding="utf-8")
        self._seq += 1
        stamped = dict(record)
        stamped["_seq"] = self._seq
        json.dump(_encode_bytes(stamped), self._handle,
                  separators=(",", ":"))
        self._handle.write("\n")
        self._pending += 1
        self._records_since_snapshot += 1
        if self._pending >= self.flush_every:
            self.sync()

    def sync(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._pending = 0

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    @property
    def needs_compaction(self) -> bool:
        return self._records_since_snapshot >= self.compact_after

    # -- read path ----------------------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[Record]:
        """Yield logged records with ``_seq > after_seq``, unstamped.

        ``after_seq`` is the loaded snapshot's watermark: records a
        crash-interrupted compaction already folded into the snapshot
        are skipped instead of applied twice.  Legacy records without a
        ``_seq`` stamp are always yielded.
        """
        if not self.log_path.exists():
            return
        with open(self.log_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = _decode_bytes(json.loads(line))
                except json.JSONDecodeError:
                    # A torn tail write is the expected crash artifact in
                    # semi-durable mode; everything before it is intact.
                    break
                seq = record.pop("_seq", None)
                if seq is not None:
                    self._seq = max(self._seq, seq)
                    if seq <= after_seq:
                        continue
                yield record

    def load_snapshot(self) -> Record | None:
        if not self.snapshot_path.exists():
            return None
        try:
            with open(self.snapshot_path, encoding="utf-8") as handle:
                raw = _decode_bytes(json.load(handle))
        except (json.JSONDecodeError, OSError) as exc:
            raise StoreError(f"corrupt snapshot: {exc}") from exc
        if isinstance(raw, dict) and _SEQ_KEY in raw and "state" in raw:
            seq = int(raw[_SEQ_KEY])
            self._seq = max(self._seq, seq)
            self.last_snapshot_seq = seq
            return raw["state"]
        # Legacy snapshot without a watermark: replay the whole log.
        self.last_snapshot_seq = 0
        return raw

    def write_snapshot(self, state: Record) -> None:
        """Atomically replace the snapshot and truncate the log."""
        self.close()
        temp_path = self.snapshot_path.with_suffix(".tmp")
        wrapped = {_SEQ_KEY: self._seq, "state": state}
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(_encode_bytes(wrapped), handle,
                      separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.snapshot_path)
        # CRASH WINDOW: the new snapshot exists but the stale log does
        # not vanish atomically with it.  The watermark above is what
        # makes a recovery straddling this window apply-once.
        if self.log_path.exists():
            os.remove(self.log_path)
        self.last_snapshot_seq = self._seq
        self._records_since_snapshot = 0


class SnapshotStore:
    """Mixin-style helper binding a store to an optional WAL.

    Stores call :meth:`record` on every mutation and implement
    ``snapshot_state``/``restore_state``/``apply_record``; the helper takes
    care of replay-on-open and compaction.
    """

    def __init__(self, wal: WriteAheadLog | None = None):
        self._wal = wal
        self._replaying = False
        self._observers: list = []

    def add_mutation_observer(self, observer) -> None:
        """Register a callable invoked with every live mutation record.

        Observers fire from :meth:`record` — i.e. under the store's own
        lock, after the mutation is applied, and never during recovery
        replay (the integrity tracker rebuilds from restored state
        instead).  With no observers registered the per-mutation cost
        is one empty-list check, so the defaults-off path is unchanged.
        """
        self._observers.append(observer)

    def wal_sequence(self) -> int:
        """Current WAL append sequence (0 for an in-memory store)."""
        return self._wal._seq if self._wal is not None else 0  # noqa: SLF001

    def recover(self) -> None:
        if self._wal is None:
            return
        self._replaying = True
        try:
            snapshot = self._wal.load_snapshot()
            if snapshot is not None:
                self.restore_state(snapshot)
            # Skip log records the snapshot already covers — a stale log
            # surviving a crash mid-compaction must not double-apply.
            for record in self._wal.replay(
                after_seq=self._wal.last_snapshot_seq
            ):
                self.apply_record(record)
        finally:
            self._replaying = False

    def record(self, record: Record) -> None:
        if self._observers and not self._replaying:
            for observer in self._observers:
                observer(record)
        if self._wal is None or self._replaying:
            return
        self._wal.append(record)
        if self._wal.needs_compaction:
            self._wal.write_snapshot(self.snapshot_state())

    def sync(self) -> None:
        if self._wal is not None:
            self._wal.sync()

    def close(self) -> None:
        if self._wal is not None:
            self._wal.write_snapshot(self.snapshot_state())
            self._wal.close()

    # Subclass responsibilities ------------------------------------------

    def snapshot_state(self) -> Record:  # pragma: no cover - abstract
        raise NotImplementedError

    def restore_state(self, state: Record) -> None:  # pragma: no cover
        raise NotImplementedError

    def apply_record(self, record: Record) -> None:  # pragma: no cover
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
