"""Elasticsearch-like inverted text index.

The paper's prototype "employed document-oriented databases, e.g.,
MongoDB and Elasticsearch, to store documents and indexes".  The MongoDB
role is :mod:`repro.stores.docstore`; this module covers the
Elasticsearch role: tokenised full-text search with TF-IDF ranking over
*non-sensitive* fields (sensitive fields never reach it — their search
goes through the tactics).

Small by design: a whitespace/punctuation tokeniser with lowercase
normalisation, per-term posting lists with term frequencies, and a
cosine-free TF-IDF scorer — enough to exercise realistic plaintext search
paths in the S_A baseline and for plain fields in protected deployments.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens; numbers kept, punctuation dropped."""
    return _TOKEN_PATTERN.findall(text.lower())


@dataclass(frozen=True)
class SearchHit:
    doc_id: str
    score: float


class InvertedIndex:
    """An in-memory inverted index over (doc_id, text) pairs."""

    def __init__(self) -> None:
        #: term -> {doc_id -> term frequency}
        self._postings: dict[str, dict[str, int]] = {}
        #: doc_id -> token count (for length normalisation)
        self._lengths: dict[str, int] = {}
        self._lock = threading.RLock()

    # -- maintenance -----------------------------------------------------------

    def index(self, doc_id: str, text: str) -> int:
        """(Re)index a document; returns the number of tokens."""
        tokens = tokenize(text)
        with self._lock:
            self._remove_locked(doc_id)
            for token in tokens:
                bucket = self._postings.setdefault(token, {})
                bucket[doc_id] = bucket.get(doc_id, 0) + 1
            self._lengths[doc_id] = len(tokens)
        return len(tokens)

    def remove(self, doc_id: str) -> bool:
        with self._lock:
            return self._remove_locked(doc_id)

    def _remove_locked(self, doc_id: str) -> bool:
        if doc_id not in self._lengths:
            return False
        for term in list(self._postings):
            bucket = self._postings[term]
            if doc_id in bucket:
                del bucket[doc_id]
                if not bucket:
                    del self._postings[term]
        del self._lengths[doc_id]
        return True

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._lengths)

    def document_frequency(self, term: str) -> int:
        with self._lock:
            return len(self._postings.get(term.lower(), {}))

    def search(self, query: str, limit: int = 10,
               require_all: bool = False) -> list[SearchHit]:
        """TF-IDF ranked search.

        ``require_all`` turns the query conjunctive (every term must
        appear); the default is disjunctive with ranking.
        """
        terms = tokenize(query)
        if not terms:
            return []
        with self._lock:
            total_docs = len(self._lengths) or 1
            scores: dict[str, float] = {}
            seen_terms: dict[str, set[str]] = {}
            for term in terms:
                postings = self._postings.get(term, {})
                if not postings:
                    continue
                idf = math.log(1 + total_docs / len(postings))
                for doc_id, tf in postings.items():
                    weight = (tf / self._lengths[doc_id]) * idf
                    scores[doc_id] = scores.get(doc_id, 0.0) + weight
                    seen_terms.setdefault(doc_id, set()).add(term)
            if require_all:
                needed = set(terms)
                scores = {
                    doc_id: score for doc_id, score in scores.items()
                    if seen_terms.get(doc_id, set()) >= needed
                }
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [SearchHit(doc_id, score)
                for doc_id, score in ranked[:limit]]

    def terms(self) -> list[str]:
        with self._lock:
            return sorted(self._postings)
