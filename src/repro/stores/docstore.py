"""Mongo-like document store.

The paper stores encrypted documents in "document-oriented databases, e.g.,
MongoDB and Elasticsearch".  This module is that substrate: documents are
flat-or-nested dicts addressed by a ``_id``, with filter-based queries, a
small ``$``-operator language and optional secondary indexes on chosen
fields.  In the encrypted deployment the indexed values are ciphertext
blobs (DET tokens), so indexes treat values as opaque, hashable terms.

Thread-safe; optionally persisted via the write-ahead log.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import DocumentNotFound, StoreError
from repro.stores.persistence import Record, SnapshotStore, WriteAheadLog

Document = dict[str, Any]


def _get_path(document: Document, path: str) -> Any:
    """Resolve a dotted field path; missing segments resolve to None."""
    value: Any = document
    for segment in path.split("."):
        if not isinstance(value, dict) or segment not in value:
            return None
        value = value[segment]
    return value


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda v, arg: v == arg,
    "$ne": lambda v, arg: v != arg,
    "$gt": lambda v, arg: v is not None and v > arg,
    "$gte": lambda v, arg: v is not None and v >= arg,
    "$lt": lambda v, arg: v is not None and v < arg,
    "$lte": lambda v, arg: v is not None and v <= arg,
    "$in": lambda v, arg: v in arg,
    "$nin": lambda v, arg: v not in arg,
    "$exists": lambda v, arg: (v is not None) == bool(arg),
}


def matches(document: Document, query: Document) -> bool:
    """Evaluate a Mongo-style filter against a document.

    Supports field equality, the comparison operators above, and the
    logical combinators ``$and``, ``$or`` and ``$not``.
    """
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$not":
            if matches(document, condition):
                return False
        elif key.startswith("$"):
            raise StoreError(f"unknown query operator {key!r}")
        elif isinstance(condition, dict) and any(
            k.startswith("$") for k in condition
        ):
            value = _get_path(document, key)
            for op, arg in condition.items():
                comparator = _COMPARATORS.get(op)
                if comparator is None:
                    raise StoreError(f"unknown comparison operator {op!r}")
                try:
                    if not comparator(value, arg):
                        return False
                except TypeError:
                    return False
        else:
            if _get_path(document, key) != condition:
                return False
    return True


class DocumentStore(SnapshotStore):
    """A single named collection of documents.

    >>> store = DocumentStore()
    >>> store.insert({"_id": "a", "n": 1})
    'a'
    >>> store.find({"n": {"$gte": 1}})[0]["_id"]
    'a'
    """

    def __init__(self, directory: str | Path | None = None,
                 name: str = "documents",
                 indexed_fields: tuple[str, ...] = ()):
        wal = WriteAheadLog(directory, name) if directory else None
        super().__init__(wal)
        self._documents: dict[str, Document] = {}
        self._indexes: dict[str, dict[Any, set[str]]] = {
            field: {} for field in indexed_fields
        }
        self._lock = threading.RLock()
        self.recover()

    # -- CRUD ---------------------------------------------------------------

    def insert(self, document: Document) -> str:
        with self._lock:
            doc_id = document.get("_id")
            if not isinstance(doc_id, str) or not doc_id:
                raise StoreError("document requires a non-empty string _id")
            if doc_id in self._documents:
                raise StoreError(f"duplicate _id {doc_id!r}")
            self._documents[doc_id] = dict(document)
            self._index_add(doc_id, document)
            self.record({"op": "insert", "doc": document})
            return doc_id

    def get(self, doc_id: str) -> Document:
        with self._lock:
            document = self._documents.get(doc_id)
            if document is None:
                raise DocumentNotFound(doc_id)
            return dict(document)

    def get_many(self, doc_ids: list[str]) -> list[Document]:
        """Fetch several documents; unknown ids are skipped."""
        with self._lock:
            return [
                dict(self._documents[d])
                for d in doc_ids
                if d in self._documents
            ]

    def replace(self, document: Document) -> None:
        with self._lock:
            doc_id = document.get("_id")
            old = self._documents.get(doc_id)
            if old is None:
                raise DocumentNotFound(str(doc_id))
            self._index_remove(doc_id, old)
            self._documents[doc_id] = dict(document)
            self._index_add(doc_id, document)
            self.record({"op": "replace", "doc": document})

    def delete(self, doc_id: str) -> bool:
        with self._lock:
            old = self._documents.pop(doc_id, None)
            if old is None:
                return False
            self._index_remove(doc_id, old)
            self.record({"op": "delete", "id": doc_id})
            return True

    def contains(self, doc_id: str) -> bool:
        with self._lock:
            return doc_id in self._documents

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    # -- queries --------------------------------------------------------------

    def find(self, query: Document | None = None,
             limit: int | None = None) -> list[Document]:
        """Filter scan, accelerated by a secondary index when the query has
        a top-level equality on an indexed field."""
        with self._lock:
            candidates = self._candidate_ids(query or {})
            results = []
            for doc_id in candidates:
                document = self._documents[doc_id]
                if query is None or matches(document, query):
                    results.append(dict(document))
                    if limit is not None and len(results) >= limit:
                        break
            return results

    def count(self, query: Document | None = None) -> int:
        if query is None:
            return len(self)
        with self._lock:
            return sum(
                1 for d in self._documents.values() if matches(d, query)
            )

    def all_ids(self) -> list[str]:
        with self._lock:
            return list(self._documents)

    def iter_documents(self) -> Iterator[Document]:
        with self._lock:
            snapshot = [dict(d) for d in self._documents.values()]
        yield from snapshot

    def _candidate_ids(self, query: Document) -> list[str]:
        for field, index in self._indexes.items():
            condition = query.get(field)
            if condition is not None and not isinstance(condition, dict):
                term = self._index_term(condition)
                return sorted(index.get(term, set()))
        return list(self._documents)

    # -- secondary indexes ------------------------------------------------------

    @staticmethod
    def _index_term(value: Any) -> Any:
        return value.hex() if isinstance(value, bytes) else value

    def _index_add(self, doc_id: str, document: Document) -> None:
        for field, index in self._indexes.items():
            value = _get_path(document, field)
            if value is not None:
                index.setdefault(self._index_term(value), set()).add(doc_id)

    def _index_remove(self, doc_id: str, document: Document) -> None:
        for field, index in self._indexes.items():
            value = _get_path(document, field)
            if value is None:
                continue
            term = self._index_term(value)
            bucket = index.get(term)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del index[term]

    # -- metrics ------------------------------------------------------------------

    def size_in_bytes(self) -> int:
        """Approximate stored size (storage-overhead performance metric)."""

        def sizeof(value: Any) -> int:
            if isinstance(value, bytes):
                return len(value)
            if isinstance(value, str):
                return len(value.encode())
            if isinstance(value, dict):
                return sum(len(k) + sizeof(v) for k, v in value.items())
            if isinstance(value, list):
                return sum(sizeof(v) for v in value)
            return 8

        with self._lock:
            return sum(sizeof(d) for d in self._documents.values())

    # -- persistence hooks ----------------------------------------------------------

    def snapshot_state(self) -> Record:
        with self._lock:
            return {"documents": list(self._documents.values())}

    def restore_state(self, state: Record) -> None:
        with self._lock:
            self._documents = {}
            for field in self._indexes:
                self._indexes[field] = {}
            for document in state["documents"]:
                self._documents[document["_id"]] = document
                self._index_add(document["_id"], document)

    def apply_record(self, record: Record) -> None:
        op = record.get("op")
        if op == "insert":
            document = record["doc"]
            self._documents[document["_id"]] = document
            self._index_add(document["_id"], document)
        elif op == "replace":
            document = record["doc"]
            old = self._documents.get(document["_id"])
            if old is not None:
                self._index_remove(document["_id"], old)
            self._documents[document["_id"]] = document
            self._index_add(document["_id"], document)
        elif op == "delete":
            old = self._documents.pop(record["id"], None)
            if old is not None:
                self._index_remove(record["id"], old)
        else:
            raise StoreError(f"unknown log record op {op!r}")
