"""Redis-like key-value store.

The paper uses Redis "in a semi-persistent durability mode to take
advantage of basic constructions such as persistent sets, maps, and so on,
to build custom indexes" — on both the gateway and the cloud.  This module
is that substrate: a namespaced store of strings (bytes), hashes (maps),
sets and counters, optionally backed by the write-ahead log in
:mod:`repro.stores.persistence`.

Keys and values are ``bytes`` throughout, matching how the secure-index
tactics use it (PRF labels in, ciphertext blobs out).  All operations are
thread-safe; the SSE tactics issue concurrent updates during the load
tests.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterator

from repro.errors import StoreError
from repro.stores.persistence import Record, SnapshotStore, WriteAheadLog


def _hex(data: bytes) -> str:
    return data.hex()


def _unhex(text: str) -> bytes:
    return bytes.fromhex(text)


class KeyValueStore(SnapshotStore):
    """In-memory KV store with optional semi-durable persistence.

    >>> store = KeyValueStore()
    >>> store.put(b"k", b"v")
    >>> store.get(b"k")
    b'v'
    """

    def __init__(self, directory: str | Path | None = None,
                 name: str = "kv"):
        wal = WriteAheadLog(directory, name) if directory else None
        super().__init__(wal)
        self._strings: dict[bytes, bytes] = {}
        self._maps: dict[bytes, dict[bytes, bytes]] = {}
        self._sets: dict[bytes, set[bytes]] = {}
        self._counters: dict[bytes, int] = {}
        self._lock = threading.RLock()
        self.recover()

    # -- strings ------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._strings[key] = value
            self.record({"op": "put", "k": key, "v": value})

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        with self._lock:
            return self._strings.get(key, default)

    def delete(self, key: bytes) -> bool:
        with self._lock:
            existed = self._strings.pop(key, None) is not None
            if existed:
                self.record({"op": "del", "k": key})
            return existed

    def exists(self, key: bytes) -> bool:
        with self._lock:
            return key in self._strings

    def keys(self) -> list[bytes]:
        with self._lock:
            return list(self._strings)

    # -- hashes (maps) -------------------------------------------------------

    def map_put(self, name: bytes, field: bytes, value: bytes) -> None:
        with self._lock:
            self._maps.setdefault(name, {})[field] = value
            self.record({"op": "mput", "n": name, "f": field, "v": value})

    def map_get(self, name: bytes, field: bytes) -> bytes | None:
        with self._lock:
            return self._maps.get(name, {}).get(field)

    def map_delete(self, name: bytes, field: bytes) -> bool:
        with self._lock:
            bucket = self._maps.get(name)
            if bucket is None or field not in bucket:
                return False
            del bucket[field]
            if not bucket:
                del self._maps[name]
            self.record({"op": "mdel", "n": name, "f": field})
            return True

    def map_items(self, name: bytes) -> list[tuple[bytes, bytes]]:
        with self._lock:
            return list(self._maps.get(name, {}).items())

    def map_size(self, name: bytes) -> int:
        with self._lock:
            return len(self._maps.get(name, {}))

    # -- sets ----------------------------------------------------------------

    def set_add(self, name: bytes, member: bytes) -> bool:
        with self._lock:
            bucket = self._sets.setdefault(name, set())
            if member in bucket:
                return False
            bucket.add(member)
            self.record({"op": "sadd", "n": name, "m": member})
            return True

    def set_remove(self, name: bytes, member: bytes) -> bool:
        with self._lock:
            bucket = self._sets.get(name)
            if bucket is None or member not in bucket:
                return False
            bucket.discard(member)
            if not bucket:
                del self._sets[name]
            self.record({"op": "srem", "n": name, "m": member})
            return True

    def set_members(self, name: bytes) -> set[bytes]:
        with self._lock:
            return set(self._sets.get(name, set()))

    def set_contains(self, name: bytes, member: bytes) -> bool:
        with self._lock:
            return member in self._sets.get(name, set())

    def set_size(self, name: bytes) -> int:
        with self._lock:
            return len(self._sets.get(name, set()))

    # -- counters -------------------------------------------------------------

    def counter_increment(self, name: bytes, delta: int = 1) -> int:
        with self._lock:
            value = self._counters.get(name, 0) + delta
            self._counters[name] = value
            self.record({"op": "incr", "n": name, "d": delta})
            return value

    def counter_get(self, name: bytes) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counter_set(self, name: bytes, value: int) -> None:
        with self._lock:
            self._counters[name] = value
            self.record({"op": "cset", "n": name, "v": value})

    # -- introspection ---------------------------------------------------------

    def flush_all(self) -> None:
        """Drop everything (test/benchmark reset)."""
        with self._lock:
            self._strings.clear()
            self._maps.clear()
            self._sets.clear()
            self._counters.clear()
            self.record({"op": "flush"})

    def size_in_bytes(self) -> int:
        """Approximate resident size: sum of key and value lengths.

        This feeds the *storage overhead* performance metric of the tactic
        abstraction model (Fig. 1 of the paper).
        """
        with self._lock:
            total = sum(len(k) + len(v) for k, v in self._strings.items())
            for name, bucket in self._maps.items():
                total += len(name)
                total += sum(len(f) + len(v) for f, v in bucket.items())
            for name, members in self._sets.items():
                total += len(name) + sum(len(m) for m in members)
            total += sum(len(n) + 8 for n in self._counters)
            return total

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "strings": len(self._strings),
                "maps": len(self._maps),
                "map_entries": sum(len(m) for m in self._maps.values()),
                "sets": len(self._sets),
                "set_members": sum(len(s) for s in self._sets.values()),
                "counters": len(self._counters),
                "bytes": self.size_in_bytes(),
            }

    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        """Iterate string entries whose key starts with ``prefix``."""
        with self._lock:
            snapshot = [
                (k, v) for k, v in self._strings.items()
                if k.startswith(prefix)
            ]
        yield from snapshot

    def map_names(self, prefix: bytes = b"") -> list[bytes]:
        """Names of every hash whose name starts with ``prefix``."""
        with self._lock:
            return [n for n in self._maps if n.startswith(prefix)]

    def set_names(self, prefix: bytes = b"") -> list[bytes]:
        with self._lock:
            return [n for n in self._sets if n.startswith(prefix)]

    def counter_names(self, prefix: bytes = b"") -> list[bytes]:
        with self._lock:
            return [n for n in self._counters if n.startswith(prefix)]

    # -- namespace migration (sharding dump/load/drop) --------------------------

    def namespace_dump(self, prefix: bytes) -> Record:
        """A wire-shippable dump of every structure under ``prefix``.

        The generic half of the shard migration SPI: tactics whose state
        cannot be split entry-by-entry (BIEX buckets, counting filters)
        relocate whole by dumping their key namespace on the source and
        loading it on the target.
        """
        with self._lock:
            return {
                "strings": {
                    _hex(k): _hex(v) for k, v in self._strings.items()
                    if k.startswith(prefix)
                },
                "maps": {
                    _hex(n): {_hex(f): _hex(v) for f, v in bucket.items()}
                    for n, bucket in self._maps.items()
                    if n.startswith(prefix)
                },
                "sets": {
                    _hex(n): [_hex(m) for m in sorted(members)]
                    for n, members in self._sets.items()
                    if n.startswith(prefix)
                },
                "counters": {
                    _hex(n): v for n, v in self._counters.items()
                    if n.startswith(prefix)
                },
            }

    def namespace_load(self, dump: Record) -> None:
        """Merge a :meth:`namespace_dump` in through the public mutating
        operations, so a WAL-backed store journals the load."""
        for key, value in dump.get("strings", {}).items():
            self.put(_unhex(key), _unhex(value))
        for name, bucket in dump.get("maps", {}).items():
            for field, value in bucket.items():
                self.map_put(_unhex(name), _unhex(field), _unhex(value))
        for name, members in dump.get("sets", {}).items():
            for member in members:
                self.set_add(_unhex(name), _unhex(member))
        for name, value in dump.get("counters", {}).items():
            self.counter_set(_unhex(name), value)

    def namespace_drop(self, prefix: bytes) -> int:
        """Delete every structure under ``prefix`` (journalled)."""
        dropped = 0
        for key, _ in self.scan(prefix):
            dropped += int(self.delete(key))
        for name in self.map_names(prefix):
            for field, _ in self.map_items(name):
                dropped += int(self.map_delete(name, field))
        for name in self.set_names(prefix):
            for member in self.set_members(name):
                dropped += int(self.set_remove(name, member))
        for name in self.counter_names(prefix):
            self.counter_set(name, 0)
            dropped += 1
        return dropped

    # -- persistence hooks ------------------------------------------------------

    def snapshot_state(self) -> Record:
        with self._lock:
            return {
                "strings": {_hex(k): _hex(v)
                            for k, v in self._strings.items()},
                "maps": {
                    _hex(n): {_hex(f): _hex(v) for f, v in bucket.items()}
                    for n, bucket in self._maps.items()
                },
                "sets": {
                    _hex(n): [_hex(m) for m in members]
                    for n, members in self._sets.items()
                },
                "counters": {_hex(n): v for n, v in self._counters.items()},
            }

    def restore_state(self, state: Record) -> None:
        with self._lock:
            self._strings = {
                _unhex(k): _unhex(v) for k, v in state["strings"].items()
            }
            self._maps = {
                _unhex(n): {_unhex(f): _unhex(v) for f, v in bucket.items()}
                for n, bucket in state["maps"].items()
            }
            self._sets = {
                _unhex(n): {_unhex(m) for m in members}
                for n, members in state["sets"].items()
            }
            self._counters = {
                _unhex(n): v for n, v in state["counters"].items()
            }

    def apply_record(self, record: Record) -> None:
        op = record.get("op")
        if op == "put":
            self._strings[record["k"]] = record["v"]
        elif op == "del":
            self._strings.pop(record["k"], None)
        elif op == "mput":
            self._maps.setdefault(record["n"], {})[record["f"]] = record["v"]
        elif op == "mdel":
            bucket = self._maps.get(record["n"], {})
            bucket.pop(record["f"], None)
            if not bucket:
                self._maps.pop(record["n"], None)
        elif op == "sadd":
            self._sets.setdefault(record["n"], set()).add(record["m"])
        elif op == "srem":
            bucket = self._sets.get(record["n"])
            if bucket is not None:
                bucket.discard(record["m"])
                if not bucket:
                    del self._sets[record["n"]]
        elif op == "incr":
            self._counters[record["n"]] = (
                self._counters.get(record["n"], 0) + record["d"]
            )
        elif op == "cset":
            self._counters[record["n"]] = record["v"]
        elif op == "flush":
            self._strings.clear()
            self._maps.clear()
            self._sets.clear()
            self._counters.clear()
        else:
            raise StoreError(f"unknown log record op {op!r}")
