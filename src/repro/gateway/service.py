"""The trusted zone: gateway runtime.

Owns the per-application trusted-zone resources — keystore, local state
store, the transport into the untrusted zone — and instantiates gateway
tactic halves on demand (the trusted side of the strategy pattern's
runtime loading).  Instances are cached per ``(field-scope, tactic)``;
provisioning is idempotent and drives the cloud admin service first so
the RPC peer exists before ``setup`` runs.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.crypto.kernels.config import resolve_crypto
from repro.crypto.kernels.executor import CryptoExecutor
from repro.keys.keystore import KeyStore
from repro.net.batch import BatchCollector, PipelineConfig
from repro.net.resilience import ResilienceConfig, wrap_resilient
from repro.net.transport import Transport
from repro.spi.context import GatewayTacticContext
from repro.spi.metrics import CostObservatory, TacticMetrics
from repro.stores.kv import KeyValueStore


class GatewayRuntime:
    """Trusted-zone tactic loader and resource holder."""

    def __init__(self, application: str, transport: Transport,
                 registry=None, keystore: KeyStore | None = None,
                 local_kv: KeyValueStore | None = None,
                 pipeline: PipelineConfig | None = None,
                 resilience: ResilienceConfig | None = None):
        if registry is None:
            from repro.core.registry import default_registry

            registry = default_registry()
        self.application = application
        self.pipeline = pipeline or PipelineConfig()
        #: The resolved crypto kernel config (env overrides applied) and
        #: the one executor every tactic context of this runtime shares
        #: — batch submissions from different fields keep the same
        #: process pool and timing sink.
        self.crypto = resolve_crypto(self.pipeline.crypto)
        self.kernels = CryptoExecutor(self.crypto)
        # Resilience wraps *below* the batch collector: collected write
        # batches are then retried whole, with their idempotency-keyed
        # sub-requests making the re-delivery safe.
        transport = wrap_resilient(transport, resilience)
        #: The integrity verifier sits between resilience (below) and
        #: the batch collector (above): batched write frames flow
        #: through it to mark the freshness ledger dirty, and proven
        #: reads ride the retried/fault-tolerant path underneath.
        self.verifier = None
        if self.pipeline.integrity is not None:
            from repro.integrity.verify import VerifyingTransport

            transport = VerifyingTransport(
                transport, application, self.pipeline.integrity
            )
            self.verifier = transport
        if self.pipeline.batch_writes and not isinstance(
            transport, BatchCollector
        ):
            # Every tactic context and the executor share this wrapper,
            # so one collection scope coalesces a whole operation's cloud
            # writes.  Outside a scope it is a transparent pass-through.
            transport = BatchCollector(
                transport,
                coalesce_window_ms=self.pipeline.coalesce_window_ms,
                coalesce_max_slots=self.pipeline.coalesce_max_slots,
            )
        self.transport = transport
        self.registry = registry
        self.keystore = keystore or KeyStore(application)
        self.local_kv = local_kv or KeyValueStore()
        #: The gateway read-cache tier (``PipelineConfig.cache``); None
        #: keeps the seed read path untouched.  Sits *above* the whole
        #: transport stack — cached plaintext never crosses it — and
        #: leans on the verifier's freshness ledger for coherence.
        self.cache_tier = None
        if self.pipeline.cache is not None and self.pipeline.cache.active:
            from repro.cache.tier import GatewayCacheTier

            self.cache_tier = GatewayCacheTier(self.pipeline.cache, self)
            if self.pipeline.cache.tokens:
                # Before any tactic is built: instances capture their
                # token caches at setup() time.
                self.kernels.enable_token_caching(
                    self.pipeline.cache.token_capacity
                )
        self.metrics = TacticMetrics()
        #: Observed per-(scope, operation, tactic) latency EWMAs feeding
        #: the query optimizer's cost model.  Runtime-owned (not
        #: executor-owned) so observations survive plan-cache
        #: invalidations and schema migrations.
        self.cost = CostObservatory()
        self._instances: dict[tuple[str, str], Any] = {}
        self._lock = threading.RLock()
        self.transport.call(
            "admin", "provision_application", application=application
        )
        if self.verifier is not None:
            self.transport.call(
                "admin", "enable_integrity", application=application
            )

    def schema_registered(self, schema) -> None:
        """Activate integrity verification per protection class.

        Called on every schema registration: once any registered field
        carries a protection class the integrity config covers
        (``min_class`` or stronger), the verifier switches on for the
        whole application.  Schemas outside the covered classes leave
        the read path at seed speed.  The cache tier records the
        schema's leakage-admission verdict here too.
        """
        if self.cache_tier is not None:
            self.cache_tier.register_schema(schema)
        if self.verifier is None or self.verifier.active:
            return
        config = self.pipeline.integrity
        for spec in schema.sensitive_fields():
            if config.covers_class(int(spec.annotation.protection_class)):
                self.verifier.activate()
                return

    @property
    def documents_service(self) -> str:
        return f"docs/{self.application}"

    def docs(self, method: str, **kwargs: Any) -> Any:
        """Call the application's cloud document service."""
        return self.transport.call(self.documents_service, method, **kwargs)

    def topology_epoch(self) -> int:
        """The untrusted zone's membership epoch (0 when unsharded)."""
        return self.transport.topology_epoch()

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        """Per-shard timings accumulated by this thread's calls."""
        return self.transport.drain_shard_timings()

    def drain_async_writes(self, timeout: float | None = None) -> int:
        """Durability barrier for quorum-acked replicated writes."""
        return self.transport.drain_async_writes(timeout)

    @property
    def batch_collector(self) -> BatchCollector | None:
        """The write-batching wrapper, when batching is configured."""
        transport = self.transport
        return transport if isinstance(transport, BatchCollector) else None

    def tactic(self, field_scope: str, tactic_name: str) -> Any:
        """Get-or-create the gateway half of one tactic instance.

        ``field_scope`` is the instance key: usually ``<schema>.<field>``,
        or ``<schema>._bool`` for the schema-wide boolean tactic shared
        across its BL-annotated fields.
        """
        key = (field_scope, tactic_name)
        with self._lock:
            instance = self._instances.get(key)
            if instance is not None:
                return instance
            registration = self.registry.get(tactic_name)
            self.transport.call(
                "admin",
                "provision_tactic",
                application=self.application,
                field=field_scope,
                tactic=tactic_name,
            )
            context = GatewayTacticContext(
                application=self.application,
                field=field_scope,
                tactic=tactic_name,
                keystore=self.keystore,
                transport=self.transport,
                local_kv=self.local_kv,
                metrics=self.metrics,
                kernels=self.kernels,
            )
            instance = registration.gateway_cls(context)
            instance.setup()
            self._instances[key] = instance
            return instance

    def loaded_tactics(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._instances)
