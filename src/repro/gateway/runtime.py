"""Async gateway runtime: the event-loop concurrency core.

The gateway used to spend a blocked OS thread per concurrent operation.
This module replaces that with one long-lived event loop: operations are
admitted through the service tier (rate limit, audit), bounded by an
in-flight semaphore, cancelled at their deadline, and executed as
asyncio tasks over the transports' native async paths.  Gateway-local
crypto still runs on worker threads (``asyncio.to_thread``); only the
wire waits are interleaved, which is where the concurrency was dying.

Isolation comes from ``contextvars``: every admitted operation runs as
its own asyncio task, and task creation snapshots the context, so one
operation's batch scopes and shard timings (both ContextVar-held since
this refactor) can never bleed into another — including operations that
were cancelled mid-scope at their deadline.

:class:`SyncGateway` is the blocking façade: the exact ``Entities``
method surface, each call submitted to the loop and joined.  Existing
synchronous code keeps its API and its results; it simply shares the
loop's admission, deadline and audit machinery with native async
callers.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future
from typing import Any, Awaitable, Callable, TYPE_CHECKING

from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    GatewayOverloadError,
    RateLimitExceeded,
)
from repro.cache.tier import set_principal
from repro.gateway.frontdoor import FrontDoor
from repro.integrity.verify import begin_op_scope, op_verification

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.entities import AsyncEntities
    from repro.core.middleware import DataBlinder
    from repro.core.query import AggregateQuery, Predicate


class RuntimeStats:
    """Thread-safe admission/completion counters for the runtime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.rate_limited = 0
        self.expired = 0
        self.in_flight = 0
        self.peak_in_flight = 0

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def enter(self) -> None:
        with self._lock:
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def leave(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "admitted": self.admitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "rate_limited": self.rate_limited,
                "expired": self.expired,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
            }


class AsyncGatewayRuntime:
    """Event-loop operation scheduler over one :class:`DataBlinder`.

    * **Admission** — ``submit`` consults the front door (per-principal
      token bucket) and a pending-operation bound before any work is
      scheduled; refusals raise before touching tactic state or the
      wire.
    * **Concurrency** — at most ``max_in_flight`` operations execute at
      once (an ``asyncio.Semaphore`` on the loop); everything else
      queues as an admitted-but-waiting task.
    * **Deadlines** — ``deadline_s`` (per call, with a runtime default)
      cancels the operation's task via ``asyncio.wait_for`` and raises
      :class:`~repro.errors.DeadlineExceeded`.  Replicated quorum
      writes detach their pending legs before cancellation unwinds, so
      durability is never silently dropped.
    * **Audit** — every terminal outcome (``ok``, ``error``,
      ``expired``, ``rate_limited``, ``rejected``) is recorded with the
      principal, operation, touched fields and latency.

    The loop thread starts lazily on first submit and is a daemon;
    ``close`` drains in-flight operations, runs the replicated-write
    durability barrier, and only then stops the loop.
    """

    def __init__(self, blinder: "DataBlinder", *,
                 max_in_flight: int = 64,
                 max_queue: int = 4096,
                 default_deadline_s: float | None = None,
                 front: FrontDoor | None = None):
        self.blinder = blinder
        self.max_in_flight = max(1, int(max_in_flight))
        self.max_queue = max(0, int(max_queue))
        self.default_deadline_s = default_deadline_s
        self.front = front or FrontDoor()
        self.stats = RuntimeStats()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False

    # -- loop lifecycle ---------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            if self._closed:
                raise AdmissionRejected("gateway runtime is closed")
            if self._loop is not None:
                return self._loop
            loop = asyncio.new_event_loop()
            # The default executor serves every to_thread hop of every
            # in-flight operation; size it so CPU-side work (crypto,
            # planning) cannot deadlock behind the wire waits.
            from concurrent.futures import ThreadPoolExecutor

            loop.set_default_executor(ThreadPoolExecutor(
                max_workers=self.max_in_flight + 4,
                thread_name_prefix="gateway-op",
            ))
            started = threading.Event()

            def run() -> None:
                asyncio.set_event_loop(loop)
                self._semaphore = asyncio.Semaphore(self.max_in_flight)
                started.set()
                loop.run_forever()

            thread = threading.Thread(
                target=run, name="gateway-loop", daemon=True
            )
            thread.start()
            started.wait()
            self._loop = loop
            self._thread = thread
            return loop

    @property
    def running(self) -> bool:
        with self._lock:
            return self._loop is not None and not self._closed

    # -- admission + execution --------------------------------------------------

    def submit(self, operation: Callable[[], Awaitable[Any]], *,
               principal: str = "anonymous", op: str = "call",
               fields: list[str] | None = None,
               deadline_s: float | None = None) -> Future:
        """Admit one async operation; returns its result future.

        ``operation`` is a zero-argument callable producing the
        operation coroutine (built lazily on the loop so task-context
        snapshotting covers it).  Raises
        :class:`~repro.errors.RateLimitExceeded` /
        :class:`~repro.errors.AdmissionRejected` when refused — refusals
        are audited but never scheduled.
        """
        start = time.perf_counter()
        try:
            self._admit(principal)
        except GatewayOverloadError as error:
            outcome = ("rate_limited"
                       if isinstance(error, RateLimitExceeded)
                       else "rejected")
            self.stats.bump(outcome)
            self.front.observe(
                principal, op, fields,
                (time.perf_counter() - start) * 1000.0,
                outcome, detail=str(error),
            )
            raise
        loop = self._ensure_loop()
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        self.stats.bump("admitted")
        future = asyncio.run_coroutine_threadsafe(
            self._run_op(operation, principal, op, fields, deadline_s,
                         start),
            loop,
        )
        return future

    def _admit(self, principal: str) -> None:
        with self._lock:
            if self._closed:
                raise AdmissionRejected("gateway runtime is closed")
            if self.max_queue and self._pending >= (
                self.max_in_flight + self.max_queue
            ):
                raise AdmissionRejected(
                    f"admission queue full "
                    f"({self._pending} operations pending)"
                )
            # Reserve the slot before the (lock-free) limiter check so
            # two racing submits cannot both squeeze past the bound.
            self._pending += 1
        try:
            self.front.admit(principal)
        except GatewayOverloadError:
            with self._lock:
                self._pending -= 1
            raise

    async def _run_op(self, operation: Callable[[], Awaitable[Any]],
                      principal: str, op: str,
                      fields: list[str] | None,
                      deadline_s: float | None, start: float) -> Any:
        outcome, detail = "ok", ""
        # Materialised before task creation so the operation task's
        # context snapshot carries the same scope dict: the verifying
        # transport writes its outcome there, and we can still read it
        # here after a cancellation unwound the task.  The cache
        # principal rides the same snapshot — per-principal cache
        # scoping falls out of task-context isolation.
        set_principal(principal)
        scope = begin_op_scope()
        try:
            async with self._semaphore:
                self.stats.enter()
                try:
                    # A fresh task per operation: its context snapshot
                    # isolates ContextVar scopes even if we cancel it.
                    task = asyncio.ensure_future(operation())
                    if deadline_s is not None:
                        return await asyncio.wait_for(task, deadline_s)
                    return await task
                finally:
                    self.stats.leave()
        except asyncio.TimeoutError:
            outcome, detail = "expired", f"deadline {deadline_s}s"
            self.stats.bump("expired")
            raise DeadlineExceeded(
                f"operation {op!r} exceeded its {deadline_s}s deadline"
            ) from None
        except BaseException as error:
            outcome, detail = "error", str(error)
            self.stats.bump("failed")
            raise
        finally:
            if outcome == "ok":
                self.stats.bump("completed")
            with self._lock:
                self._pending -= 1
            self.front.observe(
                principal, op, fields,
                (time.perf_counter() - start) * 1000.0,
                outcome, detail=detail,
                verification=op_verification(scope),
            )

    # -- data-access surface ---------------------------------------------------

    def entities(self, schema_name: str) -> AsyncEntities:
        """The awaitable data API for one registered schema.

        For direct use *on the runtime's loop* (or any loop); to get
        admission/deadline/audit treatment, go through :meth:`submit`
        or the :class:`SyncGateway` façade.
        """
        from repro.core.entities import AsyncEntities

        return AsyncEntities(self.blinder._executor(schema_name))

    def run(self, coroutine: Awaitable[Any], *,
            principal: str = "anonymous", op: str = "call",
            fields: list[str] | None = None,
            deadline_s: float | None = None,
            timeout: float | None = None) -> Any:
        """Blocking convenience: submit and join one coroutine."""
        return self.submit(
            lambda: coroutine, principal=principal, op=op,
            fields=fields, deadline_s=deadline_s,
        ).result(timeout)

    # -- shutdown ---------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> int:
        """Durability barrier: join detached replicated-write legs."""
        return self.blinder.runtime.drain_async_writes(timeout)

    def close(self, timeout: float = 30.0) -> None:
        """Ordered shutdown: refuse → drain ops → drain writes → stop.

        New submissions are refused first, in-flight operations get
        ``timeout`` seconds to finish, the replicated-write barrier
        runs, and only then does the loop stop — so nothing durable is
        lost to an abrupt teardown.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            loop, thread = self._loop, self._thread
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._pending == 0:
                    break
            time.sleep(0.005)
        remaining = max(0.001, deadline - time.monotonic())
        self.blinder.runtime.drain_async_writes(remaining)
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=5.0)
            loop.close()

    def __enter__(self) -> "AsyncGatewayRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _predicate_fields(predicate: Predicate | None) -> list[str]:
    return sorted(predicate.fields()) if predicate is not None else []


class SyncEntities:
    """Blocking ``Entities`` surface routed through the async runtime.

    Byte-identical results to :class:`repro.core.entities.Entities` on
    the same executor — every call is one admitted, deadline-bounded,
    audited operation on the loop.
    """

    def __init__(self, runtime: AsyncGatewayRuntime, schema_name: str,
                 principal: str = "anonymous",
                 deadline_s: float | None = None):
        self._runtime = runtime
        self._async = runtime.entities(schema_name)
        self._principal = principal
        self._deadline_s = deadline_s

    @property
    def schema_name(self) -> str:
        return self._async.schema_name

    def _call(self, op: str, fields: list[str],
              make: Callable[[], Awaitable[Any]]) -> Any:
        return self._runtime.submit(
            make, principal=self._principal, op=op, fields=fields,
            deadline_s=self._deadline_s,
        ).result()

    # -- CRUD -----------------------------------------------------------------

    def insert(self, document: dict) -> str:
        fields = sorted(k for k in document if k != "_id")
        return self._call("insert", fields,
                          lambda: self._async.insert(document))

    def insert_many(self, documents: list[dict]) -> list[str]:
        fields = sorted({
            k for document in documents for k in document if k != "_id"
        })
        return self._call("insert_many", fields,
                          lambda: self._async.insert_many(documents))

    def get(self, doc_id: str) -> dict:
        return self._call("get", [], lambda: self._async.get(doc_id))

    def update(self, doc_id: str, changes: dict) -> None:
        return self._call("update", sorted(changes),
                          lambda: self._async.update(doc_id, changes))

    def delete(self, doc_id: str) -> bool:
        return self._call("delete", [],
                          lambda: self._async.delete(doc_id))

    # -- search -----------------------------------------------------------------

    def find(self, predicate: Predicate | None = None,
             verify: bool | None = None,
             limit: int | None = None) -> list[dict]:
        return self._call(
            "find", _predicate_fields(predicate),
            lambda: self._async.find(predicate, verify=verify,
                                     limit=limit),
        )

    def find_one(self, predicate: Predicate) -> dict | None:
        return self._call(
            "find_one", _predicate_fields(predicate),
            lambda: self._async.find_one(predicate),
        )

    def find_ids(self, predicate: Predicate | None = None) -> set[str]:
        return self._call(
            "find_ids", _predicate_fields(predicate),
            lambda: self._async.find_ids(predicate),
        )

    def count(self, predicate: Predicate | None = None) -> int:
        return self._call(
            "count", _predicate_fields(predicate),
            lambda: self._async.count(predicate),
        )

    # -- aggregates --------------------------------------------------------------

    def aggregate(self, query: AggregateQuery) -> Any:
        fields = sorted({query.field}
                        | set(_predicate_fields(query.where)))
        return self._call("aggregate", fields,
                          lambda: self._async.aggregate(query))

    def _aggregate_query(self, function: str, field: str,
                         where: "Predicate | None") -> Any:
        from repro.core.query import AggregateQuery
        from repro.spi.descriptors import Aggregate

        return self.aggregate(
            AggregateQuery(Aggregate(function), field, where)
        )

    def average(self, field: str, where: "Predicate | None" = None) -> Any:
        return self._aggregate_query("avg", field, where)

    def sum(self, field: str, where: "Predicate | None" = None) -> Any:
        return self._aggregate_query("sum", field, where)

    def min(self, field: str, where: "Predicate | None" = None) -> Any:
        return self._aggregate_query("min", field, where)

    def max(self, field: str, where: "Predicate | None" = None) -> Any:
        return self._aggregate_query("max", field, where)

    def find_sorted(self, field: str, limit: int | None = None,
                    descending: bool = False) -> list[dict]:
        return self._call(
            "find_sorted", [field],
            lambda: self._async.find_sorted(field, limit=limit,
                                            descending=descending),
        )


class SyncGateway:
    """The sync façade over :class:`AsyncGatewayRuntime`.

    Hands out :class:`SyncEntities` bound to a principal — same method
    surface as the classic ``Entities``, same results, but every call
    flows through the loop's admission, deadline and audit machinery.
    """

    def __init__(self, runtime: AsyncGatewayRuntime,
                 principal: str = "anonymous",
                 deadline_s: float | None = None):
        self.runtime = runtime
        self.principal = principal
        self.deadline_s = deadline_s

    def entities(self, schema_name: str,
                 principal: str | None = None,
                 deadline_s: float | None = None) -> SyncEntities:
        return SyncEntities(
            self.runtime, schema_name,
            principal=principal or self.principal,
            deadline_s=(deadline_s if deadline_s is not None
                        else self.deadline_s),
        )

    def close(self) -> None:
        self.runtime.close()


__all__ = [
    "AsyncGatewayRuntime",
    "RuntimeStats",
    "SyncEntities",
    "SyncGateway",
]
