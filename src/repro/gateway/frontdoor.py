"""Service-tier front door: per-principal rate limiting and audit.

DataBlinder's architecture (§4) puts a *service tier* in front of the
gateway's data tier: the place where per-caller policy — who may do how
much, and a faithful record of what they did — is enforced before an
operation reaches tactic state or the wire.  This module is the minimal
reproduction of that tier: a token-bucket rate limiter keyed by
principal and a structured audit log, both designed to be called from
the async runtime's admission path (cheap, lock-held for microseconds,
no I/O on the hot path unless a sink file is configured).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, TextIO

from repro.errors import RateLimitExceeded


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, burst ``capacity``.

    The clock is injectable so tests can drive refill deterministically.
    Not thread-safe on its own — the :class:`RateLimiter` serialises
    access under one lock.
    """

    def __init__(self, rate: float, capacity: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.capacity,
                               self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_take(self, tokens: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will have accrued (0 when available)."""
        self._refill()
        deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class RateLimiter:
    """Per-principal token buckets with lazy creation.

    ``check(principal)`` either debits one token or raises
    :class:`~repro.errors.RateLimitExceeded` carrying an honest
    ``retry_after_s``.  Unknown principals get a fresh bucket at the
    default rate; per-principal overrides allow tiered service levels.
    """

    def __init__(self, rate: float = 100.0, capacity: float | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = float(rate)
        self.capacity = float(capacity if capacity is not None else rate)
        self._clock = clock
        self._overrides: dict[str, tuple[float, float]] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.rejections = 0

    def set_limit(self, principal: str, rate: float,
                  capacity: float | None = None) -> None:
        """Override one principal's rate (drops its current bucket)."""
        with self._lock:
            self._overrides[principal] = (
                float(rate), float(capacity if capacity is not None
                                   else rate)
            )
            self._buckets.pop(principal, None)

    def _bucket(self, principal: str) -> TokenBucket:
        bucket = self._buckets.get(principal)
        if bucket is None:
            rate, capacity = self._overrides.get(
                principal, (self.rate, self.capacity)
            )
            bucket = TokenBucket(rate, capacity, clock=self._clock)
            self._buckets[principal] = bucket
        return bucket

    def check(self, principal: str, tokens: float = 1.0) -> None:
        with self._lock:
            bucket = self._bucket(principal)
            if bucket.try_take(tokens):
                return
            self.rejections += 1
            retry_after = bucket.retry_after(tokens)
        raise RateLimitExceeded(principal, retry_after)


@dataclass
class AuditRecord:
    """One operation's audit trail entry."""

    principal: str
    op: str
    fields: list[str] = field(default_factory=list)
    latency_ms: float = 0.0
    outcome: str = "ok"
    detail: str = ""
    #: Integrity verification outcome of the operation's reads:
    #: ``"unverified"`` (no verifier, or no reads), ``"verified"`` (every
    #: fetched document carried a checked proof), ``"failed"`` (a proof,
    #: freshness or root check rejected the untrusted zone's reply).
    verification: str = "unverified"
    ts: float = 0.0

    def to_json(self) -> str:
        return json.dumps({
            "ts": round(self.ts, 6),
            "principal": self.principal,
            "op": self.op,
            "fields": list(self.fields),
            "latency_ms": round(self.latency_ms, 3),
            "outcome": self.outcome,
            "detail": self.detail,
            "verification": self.verification,
        }, sort_keys=True)


class AuditLog:
    """Structured JSONL audit sink.

    Records are kept in memory (bounded ring, for tests and the
    ``tail``/``records`` accessors) and, when a ``path`` or writable
    ``stream`` is given, appended as one JSON object per line.  Thread
    safe; the async runtime calls :meth:`record` from its loop thread
    after every operation, including rejected and expired ones — a
    refused operation is still an auditable fact.
    """

    def __init__(self, path: str | None = None,
                 stream: TextIO | None = None,
                 max_records: int = 10000,
                 clock: Callable[[], float] = time.time):
        self._path = path
        self._stream = stream
        self._max_records = max_records
        self._clock = clock
        self._records: list[AuditRecord] = []
        self._lock = threading.Lock()

    def record(self, principal: str, op: str,
               fields: list[str] | None = None,
               latency_ms: float = 0.0, outcome: str = "ok",
               detail: str = "",
               verification: str = "unverified") -> AuditRecord:
        entry = AuditRecord(
            principal=principal, op=op, fields=list(fields or ()),
            latency_ms=latency_ms, outcome=outcome, detail=detail,
            verification=verification, ts=self._clock(),
        )
        line = entry.to_json()
        with self._lock:
            self._records.append(entry)
            if len(self._records) > self._max_records:
                del self._records[:len(self._records) - self._max_records]
            if self._stream is not None:
                self._stream.write(line + "\n")
            if self._path is not None:
                with open(self._path, "a", encoding="utf-8") as sink:
                    sink.write(line + "\n")
        return entry

    def records(self) -> list[AuditRecord]:
        with self._lock:
            return list(self._records)

    def tail(self, n: int = 10) -> list[AuditRecord]:
        with self._lock:
            return list(self._records[-n:])

    def outcomes(self) -> dict[str, int]:
        """Histogram of outcomes — the ops dashboard one-liner."""
        counts: dict[str, int] = {}
        with self._lock:
            for entry in self._records:
                counts[entry.outcome] = counts.get(entry.outcome, 0) + 1
        return counts


@dataclass
class FrontDoor:
    """The service tier bundle the async runtime consults per operation."""

    limiter: RateLimiter | None = None
    audit: AuditLog | None = None

    def admit(self, principal: str) -> None:
        """Raise when the principal is over its rate; otherwise debit."""
        if self.limiter is not None:
            self.limiter.check(principal)

    def observe(self, principal: str, op: str,
                fields: list[str] | None, latency_ms: float,
                outcome: str, detail: str = "",
                verification: str = "unverified") -> None:
        if self.audit is not None:
            self.audit.record(principal, op, fields=fields,
                              latency_ms=latency_ms, outcome=outcome,
                              detail=detail, verification=verification)


def front_door(rate: float | None = None,
               audit_path: str | None = None,
               audit: bool = False,
               clock: Callable[[], float] = time.monotonic) -> FrontDoor:
    """Convenience constructor: ``None``/``False`` legs stay disabled."""
    limiter = RateLimiter(rate, clock=clock) if rate else None
    log: AuditLog | None = None
    if audit_path is not None or audit:
        log = AuditLog(path=audit_path)
    return FrontDoor(limiter=limiter, audit=log)


__all__ = [
    "AuditLog",
    "AuditRecord",
    "FrontDoor",
    "RateLimiter",
    "TokenBucket",
    "front_door",
]
