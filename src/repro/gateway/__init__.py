"""Trusted-zone runtime: gateway-side tactic loading and resources."""

from repro.gateway.frontdoor import (
    AuditLog,
    FrontDoor,
    RateLimiter,
    TokenBucket,
    front_door,
)
from repro.gateway.runtime import (
    AsyncGatewayRuntime,
    SyncEntities,
    SyncGateway,
)
from repro.gateway.service import GatewayRuntime

__all__ = [
    "AsyncGatewayRuntime",
    "AuditLog",
    "FrontDoor",
    "GatewayRuntime",
    "RateLimiter",
    "SyncEntities",
    "SyncGateway",
    "TokenBucket",
    "front_door",
]
