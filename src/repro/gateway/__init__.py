"""Trusted-zone runtime: gateway-side tactic loading and resources."""

from repro.gateway.service import GatewayRuntime

__all__ = ["GatewayRuntime"]
