"""Inference attacks against property-preserving tactics.

Implements (simplified forms of) the attacks the paper cites as the
reason property-preserving encryption sits at the weak end of the
protection ladder:

* :func:`frequency_attack` — Naveed–Kamara–Wright style frequency
  analysis against deterministic encryption [43 in the paper]: rank DET
  tokens by frequency, rank an auxiliary plaintext distribution by
  frequency, and match.  Effective exactly when value distributions are
  skewed and public — the situation of medical attributes.
* :func:`sorting_attack` — the dense-domain sorting attack against
  order-preserving encryption [29, 37]: when the attacker knows the set
  of plaintext values, sorting the ciphertexts recovers the full mapping.

Both return an :class:`AttackResult` whose accuracy is measured against
ground truth supplied by the caller (tests/benchmarks know the real
data), quantifying what class 4/5 leakage means in practice — and, by
failing against Mitra/RND deployments, what paying for class 1/2 buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one inference attack."""

    attack: str
    recovered: int
    total: int
    #: mapping from ciphertext artifact -> guessed plaintext
    guesses: dict

    @property
    def accuracy(self) -> float:
        return self.recovered / self.total if self.total else 0.0

    def render(self) -> str:
        return (f"{self.attack}: recovered {self.recovered}/{self.total} "
                f"({100 * self.accuracy:.0f}%)")


def frequency_attack(
    token_histogram: dict[bytes, int],
    auxiliary: Sequence[tuple[object, int]],
    ground_truth: dict[bytes, object] | None = None,
) -> AttackResult:
    """Match DET tokens to plaintexts by frequency rank.

    ``token_histogram`` is what the snapshot adversary reads off the DET
    index; ``auxiliary`` is the attacker's public distribution (value,
    frequency) ranked descending.  With ``ground_truth`` (token -> true
    value) the result carries a measured recovery rate; without it only
    the guesses are returned.
    """
    ranked_tokens = sorted(
        token_histogram.items(), key=lambda kv: (-kv[1], kv[0])
    )
    ranked_values = [value for value, _ in auxiliary]

    guesses = {
        token: ranked_values[index]
        for index, (token, _) in enumerate(ranked_tokens)
        if index < len(ranked_values)
    }
    recovered = 0
    if ground_truth:
        recovered = sum(
            1 for token, guess in guesses.items()
            if ground_truth.get(token) == guess
        )
    return AttackResult(
        attack="frequency-analysis(DET)",
        recovered=recovered,
        total=len(token_histogram),
        guesses=guesses,
    )


def sorting_attack(
    ciphertext_order: Sequence[tuple[int, str]],
    known_values: Sequence,
    ground_truth: dict[str, object] | None = None,
) -> AttackResult:
    """Dense-domain sorting attack against OPE.

    ``ciphertext_order`` is the snapshot's sorted (ciphertext, doc_id)
    index; ``known_values`` is the attacker's knowledge of the plaintext
    multiset (e.g. all ages 0..100 present).  Sorting both and aligning
    recovers the per-document values.
    """
    sorted_values = sorted(known_values)
    guesses = {}
    for index, (_, doc_id) in enumerate(ciphertext_order):
        if index < len(sorted_values):
            guesses[doc_id] = sorted_values[index]
    recovered = 0
    if ground_truth:
        recovered = sum(
            1 for doc_id, guess in guesses.items()
            if ground_truth.get(doc_id) == guess
        )
    return AttackResult(
        attack="sorting(OPE)",
        recovered=recovered,
        total=len(ciphertext_order),
        guesses=guesses,
    )


def rank_correlation(frequencies_a: Sequence[int],
                     frequencies_b: Sequence[int]) -> float:
    """Crude similarity of two ranked frequency profiles in [0, 1].

    Used to check whether a snapshot exposes a recognisable frequency
    profile at all: DET indexes correlate strongly with the plaintext
    distribution, Mitra/RND expose nothing rankable.
    """
    if not frequencies_a or not frequencies_b:
        return 0.0
    length = min(len(frequencies_a), len(frequencies_b))
    a = list(frequencies_a)[:length]
    b = list(frequencies_b)[:length]
    total_a, total_b = sum(a), sum(b)
    if not total_a or not total_b:
        return 0.0
    overlap = sum(
        min(x / total_a, y / total_b) for x, y in zip(a, b)
    )
    return overlap
