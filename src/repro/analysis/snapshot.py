"""Snapshot-adversary view extraction.

§2 of the paper defines the *snapshot model*: "the adversary obtains a
snapshot of the secure index and the database, a well-motivated model for
data breaches in the industry".  This module materialises that adversary:
given a :class:`repro.cloud.server.CloudZone`, it extracts exactly what a
database-dump attacker would see for each tactic's structures — and
nothing the trusted zone holds.

The extracted artifacts feed :mod:`repro.analysis.attacks`, which mounts
the inference attacks the paper cites (frequency analysis against
deterministic encryption, sorting attacks against order-preserving
encryption) and shows *why* the protection-class ladder exists.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field

from repro.cloud.server import CloudZone
from repro.net import message
from repro.spi.context import service_name


@dataclass
class SnapshotReport:
    """Aggregate statistics a snapshot adversary reads off one zone."""

    applications: list[str] = field(default_factory=list)
    documents: int = 0
    document_bytes: int = 0
    kv_entries: int = 0
    kv_bytes: int = 0

    def render(self) -> str:
        return (
            f"snapshot: {self.documents} encrypted documents "
            f"({self.document_bytes:,} B), {self.kv_entries} index "
            f"entries ({self.kv_bytes:,} B) across "
            f"{len(self.applications)} application(s)"
        )


class SnapshotAdversary:
    """Reads the untrusted zone the way a data-breach attacker would."""

    def __init__(self, cloud: CloudZone, application: str):
        self.cloud = cloud
        self.application = application
        self.kv, self.documents = cloud.application_stores(application)

    # -- generic statistics -------------------------------------------------

    def report(self) -> SnapshotReport:
        stats = self.kv.stats()
        return SnapshotReport(
            applications=[self.application],
            documents=len(self.documents),
            document_bytes=self.documents.size_in_bytes(),
            kv_entries=(stats["strings"] + stats["map_entries"]
                        + stats["set_members"]),
            kv_bytes=stats["bytes"],
        )

    def fingerprint(self) -> str:
        """Digest of the zone's entire application state (see
        :func:`zone_fingerprint`)."""
        return zone_fingerprint(self.cloud, self.application)

    # -- DET: ciphertext equality structure ------------------------------------

    def det_token_histogram(self, field_name: str,
                            schema: str = "observation",
                            tactic: str = "det") -> dict[bytes, int]:
        """Frequency of each DET token — visible in a raw snapshot.

        The DET cloud half keeps one KV *set* per token holding the
        matching document ids; set sizes are exactly the plaintext value
        frequencies, which is the *equalities* leakage of class 4.
        """
        service = service_name(self.application,
                               f"{schema}.{field_name}", tactic)
        prefix = service.encode() + b"/token/"
        histogram: dict[bytes, int] = {}
        for name, members in self.kv._sets.items():  # noqa: SLF001
            if name.startswith(prefix):
                histogram[name[len(prefix):]] = len(members)
        return histogram

    # -- OPE: total order over ciphertexts ---------------------------------------

    def ope_ciphertext_order(self, field_name: str,
                             schema: str = "observation",
                             tactic: str = "ope") -> list[tuple[int, str]]:
        """The sorted (ciphertext, doc_id) sequence — order leakage."""
        instance = self.cloud.tactic_instance(
            self.application, f"{schema}.{field_name}", tactic
        )
        return list(instance._sorted)  # noqa: SLF001

    # -- SSE: what is (not) visible ------------------------------------------------

    def sse_visible_structure(self, field_name: str,
                              schema: str = "observation",
                              tactic: str = "mitra") -> dict[str, int]:
        """What a snapshot shows for an SSE index: only entry counts.

        For Mitra every entry sits at an independent pseudorandom
        address, so the only statistic available is the total size — the
        *structure*-ish snapshot face of a class-2 scheme (identifiers
        leak only at query time, which a snapshot never sees).
        """
        service = service_name(self.application,
                               f"{schema}.{field_name}", tactic)
        prefix = service.encode()
        entries = 0
        byte_size = 0
        for name, bucket in self.kv._maps.items():  # noqa: SLF001
            if name.startswith(prefix):
                entries += len(bucket)
                byte_size += sum(len(k) + len(v) for k, v in bucket.items())
        return {"entries": entries, "bytes": byte_size}

    def value_frequencies_via_det(self, field_name: str,
                                  schema: str = "observation"
                                  ) -> list[int]:
        """Ranked (descending) value frequencies read off DET tokens."""
        histogram = self.det_token_histogram(field_name, schema)
        return sorted(histogram.values(), reverse=True)


def zone_fingerprint(cloud: CloudZone, application: str) -> str:
    """Stable digest of everything the untrusted zone stores for one
    application: every KV string/map/set/counter and every stored
    document, in canonical order.

    Two fingerprints are equal iff the stores are byte-identical, which
    is exactly what the idempotency contract promises: replaying any
    prefix of an already-applied write batch (duplicate delivery) must
    leave this digest unchanged.
    """
    kv, documents = cloud.application_stores(application)
    digest = hashlib.sha256()

    def feed(tag: bytes, *parts: bytes) -> None:
        digest.update(tag)
        for part in parts:
            digest.update(len(part).to_bytes(4, "big"))
            digest.update(part)

    with kv._lock:  # noqa: SLF001 - snapshot adversary reads raw state
        for key in sorted(kv._strings):  # noqa: SLF001
            feed(b"s", key, kv._strings[key])  # noqa: SLF001
        for name in sorted(kv._maps):  # noqa: SLF001
            bucket = kv._maps[name]  # noqa: SLF001
            for key in sorted(bucket):
                feed(b"m", name, key, bucket[key])
        for name in sorted(kv._sets):  # noqa: SLF001
            for member in sorted(kv._sets[name]):  # noqa: SLF001
                feed(b"e", name, member)
        for name in sorted(kv._counters):  # noqa: SLF001
            feed(b"c", name,
                 str(kv._counters[name]).encode())  # noqa: SLF001
    for doc_id in sorted(documents.all_ids()):
        feed(b"d", doc_id.encode(), message.encode(documents.get(doc_id)))
    return digest.hexdigest()


def auxiliary_distribution(values: list) -> list[tuple[object, int]]:
    """Build the attacker's auxiliary knowledge: a public distribution of
    plaintext values ranked by frequency (census-style data in the
    Naveed et al. attacks)."""
    counts = Counter(values)
    return sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
