"""Leakage analysis: snapshot-adversary extraction and inference attacks.

Materialises the paper's threat discussion: what a data-breach (snapshot)
adversary reads off each tactic's cloud structures, and the cited
inference attacks (frequency analysis on DET, sorting on OPE) that
motivate the five-level protection-class ladder.
"""

from repro.analysis.attacks import (
    AttackResult,
    frequency_attack,
    rank_correlation,
    sorting_attack,
)
from repro.analysis.planview import render_plan
from repro.analysis.observer import (
    ObservedCall,
    ObservedTransport,
    TranscriptAnalysis,
)
from repro.analysis.snapshot import (
    SnapshotAdversary,
    SnapshotReport,
    auxiliary_distribution,
)

__all__ = [
    "AttackResult",
    "ObservedCall",
    "ObservedTransport",
    "TranscriptAnalysis",
    "SnapshotAdversary",
    "SnapshotReport",
    "auxiliary_distribution",
    "frequency_attack",
    "rank_correlation",
    "render_plan",
    "sorting_attack",
]
