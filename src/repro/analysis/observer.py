"""Persistent-adversary observation: watching the wire, not the disk.

§2's second model: "the persistent model assumes that the adversary can
observe all operations of the cloud server but without any interference".
:class:`ObservedTransport` wraps any transport and records the transcript
an honest-but-curious provider accumulates — per-service requests with
the opaque artifacts they carry (addresses, tokens, tags).

:class:`TranscriptAnalysis` then computes the statistics such an
adversary actually exploits:

* **query linkability** — do two searches reuse identical artifacts?
  (Mitra re-sends the same PRF addresses for a repeated keyword: equal
  queries are linkable, a known property of most SSE.)
* **forward privacy, observed** — do the artifacts of an *update* ever
  collide with artifacts seen in earlier *searches*?  For Mitra/Sophos
  they must not (fresh counters / token-chain steps); for the stateless
  extension the keyword tag repeats, which is exactly its documented
  trade.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.net.latency import NetworkStats
from repro.net.transport import Transport


def _artifacts(value: Any) -> set[bytes]:
    """Collect every bytes-valued artifact in a payload, recursively."""
    found: set[bytes] = set()
    if isinstance(value, (bytes, bytearray)):
        found.add(bytes(value))
    elif isinstance(value, dict):
        for item in value.values():
            found |= _artifacts(item)
    elif isinstance(value, (list, tuple, set)):
        for item in value:
            found |= _artifacts(item)
    return found


@dataclass(frozen=True)
class ObservedCall:
    sequence: int
    service: str
    method: str
    artifacts: frozenset[bytes]


@dataclass
class TranscriptAnalysis:
    calls: list[ObservedCall] = field(default_factory=list)

    def for_service(self, suffix: str) -> list[ObservedCall]:
        return [c for c in self.calls if c.service.endswith(suffix)]

    def queries(self, suffix: str,
                methods: tuple[str, ...] = ("eq_query", "bool_query",
                                            "range_query")
                ) -> list[ObservedCall]:
        return [c for c in self.for_service(suffix)
                if c.method in methods]

    def updates(self, suffix: str,
                methods: tuple[str, ...] = ("insert", "update", "delete")
                ) -> list[ObservedCall]:
        return [c for c in self.for_service(suffix)
                if c.method in methods]

    # -- the statistics a persistent adversary computes --------------------

    def linkable_query_pairs(self, suffix: str) -> int:
        """Pairs of queries sharing at least one artifact — repeated
        searches for the same keyword are linkable in most SSE."""
        queries = self.queries(suffix)
        count = 0
        for i, a in enumerate(queries):
            for b in queries[i + 1:]:
                if a.artifacts & b.artifacts:
                    count += 1
        return count

    def update_artifacts_predictable_from(self, suffix: str,
                                          before_sequence: int) -> int:
        """Artifacts of updates issued *after* ``before_sequence`` that
        already appeared in earlier traffic — zero means the adversary's
        accumulated state says nothing about future updates (forward
        privacy, observed on the wire)."""
        seen_before: set[bytes] = set()
        for call in self.for_service(suffix):
            if call.sequence <= before_sequence:
                seen_before |= call.artifacts
        collisions = 0
        for call in self.updates(suffix):
            if call.sequence > before_sequence:
                collisions += len(call.artifacts & seen_before)
        return collisions


class ObservedTransport(Transport):
    """A wiretap: forwards calls, records the transcript."""

    def __init__(self, inner: Transport):
        self._inner = inner
        self.transcript = TranscriptAnalysis()
        self._lock = threading.Lock()
        self._sequence = 0

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        with self._lock:
            self._sequence += 1
            self.transcript.calls.append(ObservedCall(
                sequence=self._sequence,
                service=service,
                method=method,
                artifacts=frozenset(_artifacts(kwargs)),
            ))
        return self._inner.call(service, method, **kwargs)

    @property
    def last_sequence(self) -> int:
        with self._lock:
            return self._sequence

    def stats(self) -> NetworkStats:
        return self._inner.stats()

    def close(self) -> None:
        self._inner.close()
