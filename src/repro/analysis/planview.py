"""EXPLAIN rendering: a query plan with per-node cost and leakage.

``DataBlinder.explain`` compiles an operation to plan IR and renders it
here as an indented node tree.  Each node line carries the optimizer's
cost estimate (descriptor priors blended with observed latency EWMAs —
``~`` marks a value backed by real observations) and, for nodes that
touch an encrypted index, the leakage level the serving tactic admits —
making the query-time half of the leakage budget visible per plan, not
just per field.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.planner import ir

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.planner.planner import QueryPlanner


def _node_tactic(node: ir.PlanNode) -> str | None:
    tactic = getattr(node, "tactic", None)
    return tactic if isinstance(tactic, str) else None


def _leakage(planner: "QueryPlanner", node: ir.PlanNode) -> str:
    registry = planner.engine._x.runtime.registry
    tactic = _node_tactic(node)
    if tactic is not None:
        descriptor = registry.descriptor(tactic)
        return f"leaks {descriptor.leakage.level.label.lower()}"
    if isinstance(node, ir.IndexLookup):  # plain-field lookup
        return "plaintext field"
    if isinstance(node, (ir.AllIds, ir.FetchDocs, ir.StoreCount)):
        return "leaks identifiers"  # which ids the gateway touches
    if isinstance(node, (ir.Decrypt, ir.Verify, ir.SetOp, ir.Limit,
                         ir.ProjectIds, ir.Count)):
        return "gateway-side"
    return ""


def _observed(planner: "QueryPlanner", node: ir.PlanNode) -> bool:
    cost = planner.cost_model
    if isinstance(node, ir.IndexLookup) and node.tactic is not None:
        return cost.observed_ms(
            cost.scope(node.field), node.op, node.tactic
        ) is not None
    if isinstance(node, ir.BoolQuery):
        return cost.observed_ms(
            planner.engine._x._bool_scope(), "bool", node.tactic
        ) is not None
    return False


def render_plan(plan: ir.Plan, planner: "QueryPlanner",
                plan_key=None) -> str:
    """Multi-line EXPLAIN text for one compiled plan."""
    cost = planner.cost_model
    header = (
        f"plan: {plan.operation} on {plan.schema}"
        f" (verify={'on' if plan.verify else 'off'},"
        f" params={plan.param_count},"
        f" est {cost.estimate_ms(plan.root):.2f} ms)"
    )
    lines = [header]
    for node, depth in ir.walk(plan.root):
        detail = node.detail()
        label = node.kind + (f"({detail})" if detail else "")
        estimate = cost.estimate_ms(node)
        marker = "~" if _observed(planner, node) else ""
        leakage = _leakage(planner, node)
        suffix = f"  [cost {marker}{estimate:.2f} ms"
        if leakage:
            suffix += f"; {leakage}"
        suffix += "]"
        lines.append("  " * (depth + 1) + label + suffix)
    lines.extend(_crypto_wire_footer(plan, planner))
    lines.extend(_integrity_footer(planner))
    lines.extend(_cache_footer(plan, planner, plan_key))
    return "\n".join(lines)


def _cache_footer(plan: ir.Plan, planner: "QueryPlanner",
                  plan_key) -> list[str]:
    """``Cache:`` lines when the runtime has a read-cache tier.

    Surfaces the per-level state (entries and observed hit rate), the
    schema's leakage-admission verdict for the plaintext-bearing levels,
    and — once the shape has traffic — the learned hit probability with
    the effective (hit-weighted) cost estimate the operator should
    expect instead of the cold estimate in the header.
    """
    runtime = planner.engine._x.runtime
    tier = getattr(runtime, "cache_tier", None)
    if tier is None:
        return []
    snapshot = tier.snapshot()
    parts = []
    for level in ("tokens", "results", "documents"):
        stats = snapshot[level]
        enabled = getattr(tier.config, level)
        if not enabled or stats is None:
            parts.append(f"{level} off")
            continue
        hits = stats.get("hits", 0)
        misses = stats.get("misses", 0)
        total = hits + misses
        rate = f"{hits / total:.0%} hits" if total else "no traffic"
        parts.append(f"{level} on ({stats.get('entries', 0)} entries, "
                     f"{rate})")
    admitted = tier.admits_plaintext(plan.schema)
    lines = [
        "  Cache: " + ", ".join(parts),
        (f"  Cache admission: plaintext levels "
         f"{'admitted' if admitted else 'refused'} for {plan.schema} "
         f"(floor C{tier.config.plaintext_floor()})"),
    ]
    coherence = snapshot["coherence"]
    if coherence["validations"]:
        lines.append(
            f"  Cache coherence: {coherence['validations']} validations, "
            f"{coherence['stamp_mismatches']} stamp mismatches"
        )
    if plan_key is not None:
        probability = planner.cost_model.result_hit_probability(plan_key)
        if probability > 0.0:
            effective = planner.cost_model.cached_estimate_ms(
                plan_key, plan.root
            )
            lines.append(
                f"  Cache hit probability (this shape): "
                f"{probability:.0%} -> est {effective:.2f} ms effective"
            )
    return lines


def _integrity_footer(planner: "QueryPlanner") -> list[str]:
    """One ``Integrity:`` line when the runtime has a verifier.

    Surfaces which verification mode the plans run under and, for
    proof-on-fetch, the per-fetch surcharge the cost estimates above
    already include — so an operator reading EXPLAIN sees why a fetch
    node got more expensive after integrity was switched on.
    """
    runtime = planner.engine._x.runtime
    verifier = getattr(runtime, "verifier", None)
    if verifier is None:
        return []
    config = verifier.config
    if not verifier.active:
        return [f"  Integrity: {config.mode} configured, inactive "
                f"(no registered field at class <= C{config.min_class})"]
    if config.mode == "fetch":
        surcharge = planner.cost_model.verify_surcharge_ms()
        return [f"  Integrity: proof-on-fetch active "
                f"(fields at class <= C{config.min_class}; "
                f"+{surcharge:.2f} ms/fetch)"]
    return ["  Integrity: audit-pass active "
            "(verification runs off the query path)"]


def _crypto_wire_footer(plan: ir.Plan, planner: "QueryPlanner") -> list[str]:
    """Observed crypto-vs-wire split for write plans.

    The kernelised bulk-insert path records its two phases (and a
    per-kernel breakdown) as ``Crypto:*`` / ``Wire:*`` stat rows; for a
    write plan the EXPLAIN output surfaces them so an operator can see
    whether a slow ingest is compute- or network-bound.  Reads, and
    runtimes with the kernels off, have no such rows and no footer.
    """
    if plan.operation not in ("insert", "update", "delete"):
        return []
    timings = planner.stats.snapshot()["node_timings"]
    rows = [
        (kind, cost) for kind, cost in timings.items()
        if kind.startswith(("Crypto:", "Wire:"))
    ]
    if not rows:
        return []
    lines = ["  observed crypto/wire split:"]
    for kind, cost in rows:
        mean_ms = (
            1000.0 * cost["seconds"] / cost["calls"] if cost["calls"]
            else 0.0
        )
        lines.append(
            f"    {kind:<24}{cost['calls']:>7} calls"
            f"  {mean_ms:>9.3f} ms/call"
        )
    return lines
