"""Key management: the middleware's *Keys* interface.

Every tactic instance bound to a field needs its own independent key
material (a Mitra index key, a DET value key, a Paillier keypair, ...).
The :class:`KeyStore` derives symmetric keys deterministically with HKDF
from a per-application root key held in the (simulated) HSM, namespaced by
``(application, field, tactic, purpose)`` — so the gateway is stateless
with respect to symmetric keys, the property the paper's conclusion calls
out as required for cloud-native deployment.

Asymmetric keypairs (Paillier, RSA) cannot be HKDF-derived; they are
generated once, cached, and persisted wrapped under the HSM master when a
durable directory is configured.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.crypto import elgamal, paillier, rsa
from repro.crypto.primitives.hmac_prf import hkdf
from repro.crypto.primitives.random import DeterministicRandom
from repro.keys.hsm import SimulatedHsm
from repro.errors import KeyManagementError


class KeyStore:
    """Per-application key hierarchy rooted in an HSM master key."""

    def __init__(self, application: str, hsm: SimulatedHsm | None = None):
        if not application:
            raise KeyManagementError("application name must be non-empty")
        self.application = application
        self.hsm = hsm or SimulatedHsm()
        self._master_label = f"app/{application}"
        if not self.hsm.has_master_key(self._master_label):
            self.hsm.create_master_key(self._master_label)
        # The application root is *derived*, not generated: a restarted
        # gateway holding only the HSM recovers the identical root (and
        # with it every HKDF'd tactic key), which is what makes the
        # trusted zone replaceable.  Rotation bumps the epoch.
        self._root_epoch = 0
        self._root = self._derive_root()
        self._lock = threading.RLock()
        self._paillier_cache: dict[tuple[str, str, int], paillier.PaillierPrivateKey] = {}
        self._rsa_cache: dict[tuple[str, str, int], rsa.RsaPrivateKey] = {}
        self._elgamal_cache: dict[tuple[str, str, int], elgamal.ElGamalPrivateKey] = {}
        # HKDF subkey memo, keyed by the full derivation tuple.  Tactic
        # setup() calls and the resolve_eq fast path hit the same few
        # (field, tactic, purpose) triples repeatedly; the derivation is
        # deterministic per root epoch, so caching it is exact.  Cleared
        # on rotation (the root — and thus every subkey — changes).
        self._derive_cache: dict[tuple[str, str, str, int], bytes] = {}

    @property
    def root_epoch(self) -> int:
        """The current root-key epoch (bumped by :meth:`rotate_root`).

        Part of the cache tier's coherence token: cached plaintext
        derived under an older epoch is invalid after rotation.
        """
        return self._root_epoch

    def _derive_root(self) -> bytes:
        return self.hsm.derive_data_key(
            self._master_label,
            f"root/{self.application}/epoch/{self._root_epoch}".encode(),
            32,
        )

    # -- symmetric ------------------------------------------------------------

    def derive(self, field: str, tactic: str, purpose: str = "key",
               length: int = 32) -> bytes:
        """Deterministically derive a symmetric key for a tactic instance."""
        cache_key = (field, tactic, purpose, length)
        with self._lock:
            cached = self._derive_cache.get(cache_key)
            if cached is not None:
                return cached
        info = "/".join((self.application, field, tactic, purpose)).encode()
        key = hkdf(self._root, info, length)
        with self._lock:
            if len(self._derive_cache) >= 4096:
                self._derive_cache.clear()
            self._derive_cache[cache_key] = key
        return key

    # -- asymmetric -----------------------------------------------------------

    def _keypair_coins(self, kind: str, field: str, tactic: str,
                       bits: int) -> "DeterministicRandom":
        """Deterministic keygen coins rooted in the HSM.

        Asymmetric keypairs are *re-derivable*: the same (application,
        field, tactic, bits) always regenerates the identical keypair,
        so a restarted gateway can still decrypt old Paillier
        aggregates and walk old Sophos token chains.
        """
        seed = self.derive(field, tactic, f"keygen/{kind}/{bits}", 32)
        return DeterministicRandom(seed)

    def paillier_keypair(self, field: str, tactic: str = "paillier",
                         bits: int = 512) -> paillier.PaillierPrivateKey:
        """Get-or-rederive the Paillier keypair bound to a field."""
        cache_key = (field, tactic, bits)
        with self._lock:
            keypair = self._paillier_cache.get(cache_key)
            if keypair is None:
                coins = self._keypair_coins("paillier", field, tactic,
                                            bits)
                keypair = paillier.generate_keypair(bits, coins.randbelow)
                self._paillier_cache[cache_key] = keypair
            return keypair

    def rsa_keypair(self, field: str, tactic: str = "sophos",
                    bits: int = 1024) -> rsa.RsaPrivateKey:
        """Get-or-rederive the RSA keypair bound to a field."""
        cache_key = (field, tactic, bits)
        with self._lock:
            keypair = self._rsa_cache.get(cache_key)
            if keypair is None:
                coins = self._keypair_coins("rsa", field, tactic, bits)
                keypair = rsa.generate_keypair(bits, coins.randbelow)
                self._rsa_cache[cache_key] = keypair
            return keypair

    def elgamal_keypair(self, field: str, tactic: str = "elgamal",
                        bits: int = 256) -> elgamal.ElGamalPrivateKey:
        """Get-or-rederive the ElGamal keypair bound to a field."""
        cache_key = (field, tactic, bits)
        with self._lock:
            keypair = self._elgamal_cache.get(cache_key)
            if keypair is None:
                coins = self._keypair_coins("elgamal", field, tactic,
                                            bits)
                keypair = elgamal.generate_keypair(bits, coins.randbelow)
                self._elgamal_cache[cache_key] = keypair
            return keypair

    # -- rotation ----------------------------------------------------------------

    def rotate_root(self) -> None:
        """Re-key the application root (crypto-agility drill).

        All derived symmetric keys change; callers owning encrypted state
        must re-encrypt (the middleware exposes this through tactic
        re-initialisation).  Cached asymmetric keypairs are dropped too.
        """
        with self._lock:
            self._root_epoch += 1
            self._root = self._derive_root()
            self._paillier_cache.clear()
            self._rsa_cache.clear()
            self._elgamal_cache.clear()
            self._derive_cache.clear()


KeyProvider = Callable[[str, str, str, int], bytes]
