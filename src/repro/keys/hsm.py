"""Simulated hardware security module (HSM).

The paper's *Keys* interface lets the middleware "integrate with
on-premise key management systems (e.g., HSM)".  This module simulates
one: master keys live inside the module, are addressable only by handle,
and never leave it in plaintext.  Data keys are generated inside and
exported only *wrapped* (AES-GCM under the master key), matching how a
real PKCS#11 device is driven.
"""

from __future__ import annotations

import threading

from repro.crypto import oprf
from repro.crypto.primitives.random import RandomSource, default_random
from repro.crypto.symmetric import Aead
from repro.errors import IntegrityError, KeyManagementError


class SimulatedHsm:
    """An in-process HSM with handle-addressed, non-exportable masters."""

    def __init__(self, rng: RandomSource | None = None):
        self._rng = rng or default_random()
        self._masters: dict[str, bytes] = {}
        self._oprf_keys: dict[str, tuple[oprf.OprfGroup, int]] = {}
        self._lock = threading.RLock()

    def create_master_key(self, label: str) -> str:
        """Generate a master key inside the module; returns its handle."""
        with self._lock:
            if label in self._masters:
                raise KeyManagementError(f"master key {label!r} exists")
            self._masters[label] = self._rng.token_bytes(32)
            return label

    def has_master_key(self, label: str) -> bool:
        with self._lock:
            return label in self._masters

    def destroy_master_key(self, label: str) -> None:
        with self._lock:
            if self._masters.pop(label, None) is None:
                raise KeyManagementError(f"no master key {label!r}")

    def _envelope(self, label: str) -> Aead:
        with self._lock:
            master = self._masters.get(label)
        if master is None:
            raise KeyManagementError(f"no master key {label!r}")
        return Aead(master[:16], rng=self._rng)

    def generate_wrapped_key(self, label: str, length: int = 32,
                             context: bytes = b"") -> tuple[bytes, bytes]:
        """Generate a data key inside the HSM.

        Returns ``(plaintext_key, wrapped_key)`` — the plaintext copy is
        handed to the caller for immediate use; only the wrapped copy may
        be persisted.
        """
        if length < 16:
            raise KeyManagementError("data keys must be at least 16 bytes")
        key = self._rng.token_bytes(length)
        return key, self.wrap(label, key, context)

    def derive_data_key(self, label: str, context: bytes,
                        length: int = 32) -> bytes:
        """Deterministically derive a data key from a module-held master.

        Unlike :meth:`generate_wrapped_key`, the same ``(label,
        context)`` always yields the same key — the pattern a restarted
        gateway uses to re-obtain its application root without any
        persisted key material outside the HSM.
        """
        from repro.crypto.primitives.hmac_prf import hkdf

        with self._lock:
            master = self._masters.get(label)
        if master is None:
            raise KeyManagementError(f"no master key {label!r}")
        return hkdf(master, b"hsm-derive/" + context, length)

    def wrap(self, label: str, key: bytes, context: bytes = b"") -> bytes:
        return self._envelope(label).encrypt(key, aad=context)

    def unwrap(self, label: str, wrapped: bytes,
               context: bytes = b"") -> bytes:
        try:
            return self._envelope(label).decrypt(wrapped, aad=context)
        except IntegrityError as exc:
            raise KeyManagementError(
                "unwrap failed: wrong master key or tampered blob"
            ) from exc

    # -- OPRF keys (blind-index support) -----------------------------------

    def create_oprf_key(self, label: str,
                        group_bits: int = 256) -> oprf.OprfGroup:
        """Generate an OPRF key inside the module; only the group's
        public parameters leave.  Idempotent per label."""
        with self._lock:
            existing = self._oprf_keys.get(label)
            if existing is not None:
                return existing[0]
            group = oprf.generate_group(group_bits,
                                        self._rng.randbelow)
            key = oprf.generate_key(group, self._rng)
            self._oprf_keys[label] = (group, key)
            return group

    def oprf_evaluate(self, label: str, blinded: int) -> int:
        """Evaluate the module-held key on a blinded element.

        The element is blinded, so the HSM learns nothing about the
        input; the caller learns nothing about the key.
        """
        with self._lock:
            entry = self._oprf_keys.get(label)
        if entry is None:
            raise KeyManagementError(f"no OPRF key {label!r}")
        group, key = entry
        return oprf.evaluate_blinded(group, key, blinded)

    def oprf_evaluate_many(self, label: str,
                           blinded: list[int]) -> list[int]:
        """Evaluate a whole batch of blinded elements in one HSM call.

        One lock acquisition and one command round trip for the batch —
        against a real PKCS#11 device this is the difference between N
        serialized command latencies and one — with the same obliviousness
        guarantee per element as :meth:`oprf_evaluate`.
        """
        with self._lock:
            entry = self._oprf_keys.get(label)
        if entry is None:
            raise KeyManagementError(f"no OPRF key {label!r}")
        group, key = entry
        return [
            oprf.evaluate_blinded(group, key, element)
            for element in blinded
        ]
