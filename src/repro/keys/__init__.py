"""Key management: the middleware's Keys interface (HSM + keystore)."""

from repro.keys.hsm import SimulatedHsm
from repro.keys.keystore import KeyStore

__all__ = ["KeyStore", "SimulatedHsm"]
