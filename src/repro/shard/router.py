"""ShardedTransport: hash-ring routing + scatter/gather over N zones.

The router implements the standard :class:`~repro.net.transport.Transport`
interface over a set of named per-node transports, so the gateway (and
every tactic protocol above it) stays oblivious to the topology:

* **Key-routed operations** — document CRUD by ``_id``, DET/RND/OPE/ORE
  token and ciphertext writes by ``doc_id``, Sophos/Mitra index writes by
  ``address``, stateless-SSE postings by ``tag`` — go to the ring owner
  of their shard key (plus replicas when ``replication > 1``).
* **Scatter/gather operations** — Sophos search, boolean BIEX queries,
  range scans, ``count``, ``all_ids`` — broadcast to every node and the
  router merges per tactic semantics (set union, elementwise
  first-non-None for Mitra address slots, homomorphic ``combine`` for
  Paillier/ElGamal partials, an order-merge for OPE/ORE scans).
* **Pinned services** — BIEX two-level / ZMF (whose cross-anchor tag
  dedup needs all pairs on one node) and unknown tactics — live whole on
  ``replication`` ring-chosen nodes and move only via the generic
  namespace dump/load protocol during node removal.

Reads fail over along the replica chain on an open circuit breaker
(reusing the PR 2 resilience machinery *below* the router: wrap each
per-node transport in a :class:`~repro.net.resilience.ResilientTransport`
to get per-shard breakers).  During an online reshard the router keeps
the previous ring as a *forwarding table*: reads that miss on the new
owner fall back to the previous owner, so a migration in flight never
makes a document or index entry unreachable.

Membership changes bump ``topology_epoch`` — the planner drops its
shape-keyed plan cache when the epoch moves.
"""

from __future__ import annotations

import functools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Sequence

from repro.errors import CircuitOpenError, RemoteError, TransportError
from repro.net.latency import NetworkStats, roll_up
from repro.net.rpc import Request, Response
from repro.net.transport import Transport
from repro.shard.config import ShardConfig
from repro.shard.ring import HashRing

#: Tactics whose cloud entries are keyed by document id: every index
#: entry of a document co-locates with the document itself.
DOC_KEYED = frozenset({
    "det", "rnd", "blind-index", "ope", "ore", "paillier", "elgamal",
})
#: Tactics keyed by opaque index address (forward-private SSE chains).
ADDRESS_KEYED = frozenset({"sophos", "mitra"})
#: Tactics keyed by keyword tag (append-only posting lists).
TAG_KEYED = frozenset({"sse-stateless"})
#: Tactics needing cross-entry state on one node (BIEX cross-anchor tag
#: dedup, ZMF counting filter).  Unknown tactic names are pinned too —
#: the conservative default for third-party registrations.
PINNED = frozenset({"biex-2lev", "biex-zmf"})
#: Order-revealing tactics: ``ordered_range`` scatters are rewritten to
#: ``ordered_range_keyed`` so the router can merge by ciphertext order.
ORDERED = frozenset({"ope", "ore"})
#: Aggregating tactics: partial aggregates merge through a cloud-side
#: ``combine`` call (the router never touches the homomorphic math).
AGGREGATE = frozenset({"paillier", "elgamal"})

#: Cloud-tactic methods that mutate index state (routed as writes).
MUTATING_TACTIC_METHODS = frozenset({
    "insert", "update", "delete", "add", "remove", "upsert",
    "insert_terms", "update_terms", "delete_terms",
})


def _tactic_of(service: str) -> str:
    return service.rsplit("/", 1)[-1]


def _freeze(value: Any) -> Any:
    """A hashable key for wire values (lists arrive un-tupled)."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted(
            (key, _freeze(item)) for key, item in value.items()
        ))
    return value


class ShardedTransport(Transport):
    """Routes one gateway onto N named per-node transports."""

    def __init__(self, nodes: Iterable[tuple[str, Transport]],
                 config: ShardConfig | None = None):
        self.config = config or ShardConfig()
        self._nodes: dict[str, Transport] = {}
        self._order: list[str] = []
        for name, transport in nodes:
            if name in self._nodes:
                raise TransportError(f"duplicate shard node {name!r}")
            self._nodes[name] = transport
            self._order.append(name)
        if not self._nodes:
            raise TransportError("sharded transport needs at least one node")
        self._ring = HashRing(self._order, vnodes=self.config.vnodes,
                              seed=self.config.seed)
        #: Previous ring while a reshard is in flight (forwarding table).
        self._forward: HashRing | None = None
        self._epoch = 1
        self._lock = threading.RLock()
        self._local = threading.local()
        self._pool: ThreadPoolExecutor | None = None
        self._failovers = 0
        self._replica_errors = 0
        self._scatters = 0
        #: Provisioning calls replayed onto every joining node.
        self._provision_log: list[Request] = []
        self._applications: list[str] = []
        self._tactic_services: dict[str, str] = {}
        self._pins: dict[str, list[str]] = {}

    # -- topology --------------------------------------------------------------

    def topology_epoch(self) -> int:
        with self._lock:
            return self._epoch

    def node_names(self) -> list[str]:
        with self._lock:
            return list(self._order)

    def node_transport(self, name: str) -> Transport:
        return self._nodes[name]

    def ring_spec(self, self_node: str | None = None) -> dict[str, Any]:
        with self._lock:
            return self._ring.spec(self_node)

    def forwarding_active(self) -> bool:
        with self._lock:
            return self._forward is not None

    @property
    def applications(self) -> list[str]:
        with self._lock:
            return list(self._applications)

    def tactic_services(self) -> dict[str, str]:
        """Provisioned tactic service name -> tactic name."""
        with self._lock:
            return dict(self._tactic_services)

    @property
    def provision_log(self) -> list[Request]:
        with self._lock:
            return list(self._provision_log)

    def pins(self) -> dict[str, list[str]]:
        with self._lock:
            return {name: list(p) for name, p in self._pins.items()}

    def set_pins(self, service: str, nodes: Sequence[str]) -> None:
        with self._lock:
            self._pins[service] = list(nodes)

    def _topology(self) -> tuple[HashRing, HashRing | None, list[str]]:
        with self._lock:
            return self._ring, self._forward, list(self._order)

    def _replication(self) -> int:
        return max(1, min(self.config.replication, len(self._order)))

    # -- membership (driven by repro.shard.rebalance.Resharder) ----------------

    def begin_join(self, name: str, transport: Transport) -> None:
        """Admit a node: replay provisioning, then extend the ring.

        The previous ring becomes the forwarding table until
        :meth:`finish_migration`, so reads stay correct while keys move.
        """
        for request in self.provision_log:
            transport.call_request(request)
        with self._lock:
            if name in self._nodes:
                raise TransportError(f"shard node {name!r} already joined")
            self._forward = HashRing.from_spec(self._ring.spec())
            self._nodes[name] = transport
            self._order.append(name)
            ring = HashRing.from_spec(self._ring.spec())
            ring.add(name)
            self._ring = ring
            self._epoch += 1

    def begin_leave(self, name: str) -> None:
        """Retire a node from the ring but keep its transport reachable
        (forwarded reads and migration still address it)."""
        with self._lock:
            if name not in self._nodes:
                raise TransportError(f"unknown shard node {name!r}")
            if len(self._order) == 1:
                raise TransportError("cannot remove the last shard node")
            self._forward = HashRing.from_spec(self._ring.spec())
            ring = HashRing.from_spec(self._ring.spec())
            ring.remove(name)
            self._ring = ring
            self._epoch += 1

    def finish_migration(self) -> None:
        with self._lock:
            self._forward = None
            self._epoch += 1

    def finish_leave(self, name: str) -> None:
        with self._lock:
            self._forward = None
            self._nodes.pop(name, None)
            if name in self._order:
                self._order.remove(name)
            self._epoch += 1

    # -- timing / stats --------------------------------------------------------

    def _timings(self) -> list[tuple[str, float]]:
        timings = getattr(self._local, "timings", None)
        if timings is None:
            timings = []
            self._local.timings = timings
        return timings

    def _record_timing(self, name: str, seconds: float) -> None:
        self._timings().append((name, seconds))

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        timings = self._timings()
        self._local.timings = []
        return timings

    def stats(self) -> NetworkStats:
        return roll_up(self.labeled_stats())

    def labeled_stats(self) -> dict[str, NetworkStats]:
        labeled: dict[str, NetworkStats] = {}
        with self._lock:
            nodes = list(self._nodes.items())
            own = NetworkStats(failovers=self._failovers)
        for name, transport in nodes:
            labeled[f"shard:{name}"] = roll_up(transport.labeled_stats())
        labeled["router"] = own
        return labeled

    def scatter_count(self) -> int:
        with self._lock:
            return self._scatters

    def replica_error_count(self) -> int:
        with self._lock:
            return self._replica_errors

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            nodes = list(self._nodes.values())
        if pool is not None:
            pool.shutdown(wait=False)
        for transport in nodes:
            transport.close()

    # -- low-level node calls --------------------------------------------------

    def _timed_call(self, name: str, request: Request) -> Any:
        node = self._nodes[name]
        started = time.perf_counter()
        try:
            return node.call_request(request)
        finally:
            self._record_timing(name, time.perf_counter() - started)

    def _scatter_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(2, self.config.fanout_workers),
                    thread_name_prefix="shard-scatter",
                )
            return self._pool

    def _broadcast(self, request: Request,
                   nodes: Sequence[str] | None = None,
                   skip_broken: bool | None = None,
                   ) -> list[tuple[str, Any]]:
        """Call every target node, returning ``(name, result)`` rows in
        node order.

        A :class:`RemoteError` (application failure) always propagates.
        Link failures propagate too unless ``skip_broken`` — the default
        when replication holds every datum on more than one node, where a
        broken shard's rows exist elsewhere in the gather.
        """
        targets = list(nodes) if nodes is not None else self.node_names()
        if skip_broken is None:
            skip_broken = self._replication() > 1

        def one(name: str) -> tuple[str, Any, float, Exception | None]:
            node = self._nodes[name]
            started = time.perf_counter()
            try:
                result = node.call_request(request)
                return name, result, time.perf_counter() - started, None
            except TransportError as exc:
                return name, None, time.perf_counter() - started, exc

        if (self.config.parallel_fanout and len(targets) > 1):
            rows = list(self._scatter_pool().map(one, targets))
        else:
            rows = [one(name) for name in targets]

        with self._lock:
            self._scatters += 1
        gathered: list[tuple[str, Any]] = []
        last_error: Exception | None = None
        for name, result, seconds, error in rows:
            self._record_timing(name, seconds)
            if error is not None:
                if skip_broken and not isinstance(error, RemoteError):
                    with self._lock:
                        self._failovers += 1
                    last_error = error
                    continue
                raise error
            gathered.append((name, result))
        if not gathered and last_error is not None:
            raise last_error
        return gathered

    def _attempt_chain(self, names: Sequence[str], request: Request) -> Any:
        """Read along a replica chain: an open breaker moves to the next
        candidate; application errors propagate immediately."""
        last: Exception | None = None
        for name in names:
            try:
                return self._timed_call(name, request)
            except CircuitOpenError as exc:
                last = exc
                with self._lock:
                    self._failovers += 1
        assert last is not None
        raise last

    def _routed_write(self, key: str | bytes, request: Request) -> Any:
        """Deliver a write to the owner chain.

        The first successful delivery's result is returned.  A non-breaker
        failure of the *primary* propagates (the resilience layer above
        redelivers; per-host idempotency dedup makes that safe); replica
        failures are swallowed and counted.
        """
        ring, _, _ = self._topology()
        owners = ring.owners(key, self._replication())
        result: Any = None
        delivered = False
        last: Exception | None = None
        for index, name in enumerate(owners):
            try:
                value = self._timed_call(name, request)
            except CircuitOpenError as exc:
                last = exc
                with self._lock:
                    if delivered:
                        self._replica_errors += 1
                    else:
                        self._failovers += 1
                continue
            except TransportError as exc:
                if index == 0:
                    raise
                last = exc
                with self._lock:
                    self._replica_errors += 1
                continue
            if not delivered:
                result = value
                delivered = True
        if not delivered:
            assert last is not None
            raise last
        return result

    def _routed_read(self, key: str | bytes, request: Request) -> Any:
        ring, _, _ = self._topology()
        owners = ring.owners(key, self._replication())
        if len(owners) == 1:
            return self._timed_call(owners[0], request)
        return self._attempt_chain(owners, request)

    def _prev_owner(self, key: str | bytes) -> str | None:
        """The forwarding-table owner, when it differs from the current
        owner and is still reachable."""
        ring, forward, _ = self._topology()
        if forward is None:
            return None
        prev = forward.owner(key)
        if prev == ring.owner(key) or prev not in self._nodes:
            return None
        return prev

    # -- Transport interface ---------------------------------------------------

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        service = request.service
        if service == "admin":
            return self._admin(request)
        if service.startswith("docs/"):
            return self._docs(request)
        if service.startswith("tactic/"):
            return self._tactic(request)
        # Unknown service class: conservative broadcast, last result.
        return self._broadcast_last(request)

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        _, forward, order = self._topology()
        if len(order) == 1 and forward is None:
            name = order[0]
            started = time.perf_counter()
            try:
                return self._nodes[name].call_batch(list(requests))
            finally:
                self._record_timing(name, time.perf_counter() - started)

        responses: list[Response | None] = [None] * len(requests)
        grouped: dict[str, tuple[list[int], list[Request]]] = {}
        loose: list[int] = []
        for index, request in enumerate(requests):
            target = self._single_route(request)
            if target is None:
                loose.append(index)
            else:
                indices, subrequests = grouped.setdefault(
                    target, ([], [])
                )
                indices.append(index)
                subrequests.append(request)
        for name, (indices, subrequests) in grouped.items():
            started = time.perf_counter()
            try:
                answered = self._nodes[name].call_batch(subrequests)
            finally:
                self._record_timing(name,
                                    time.perf_counter() - started)
            for slot, response in zip(indices, answered):
                responses[slot] = response
        for index in loose:
            # Base-class semantics: per-slot isolation of everything but
            # link-level failures.
            responses[index] = Transport.call_batch(
                self, [requests[index]]
            )[0]
        missing = [i for i, r in enumerate(responses) if r is None]
        if missing:
            raise TransportError(
                f"sharded batch lost responses for slots {missing}"
            )
        return [r for r in responses if r is not None]

    def _single_route(self, request: Request) -> str | None:
        """The owning node for batch slots that are pure single-node
        deliveries; ``None`` sends the slot through the full router."""
        ring, forward, _ = self._topology()
        if self._replication() > 1:
            return None
        service, method, kwargs = (request.service, request.method,
                                   request.kwargs)
        if service.startswith("docs/"):
            if method == "insert" and forward is None:
                doc_id = (kwargs.get("document") or {}).get("_id")
                return ring.owner(doc_id) if doc_id else None
            if method in ("replace", "delete") and forward is None:
                key = (kwargs.get("document") or {}).get("_id") \
                    if method == "replace" else kwargs.get("doc_id")
                return ring.owner(key) if key else None
            return None
        if service.startswith("tactic/"):
            tactic = _tactic_of(service)
            if method == "setup" or method not in MUTATING_TACTIC_METHODS:
                return None
            if tactic in DOC_KEYED and "doc_id" in kwargs:
                return ring.owner(kwargs["doc_id"])
            if tactic in ADDRESS_KEYED and "address" in kwargs:
                return ring.owner(self._address_key(kwargs["address"]))
            if tactic in TAG_KEYED and "tag" in kwargs:
                return ring.owner(self._address_key(kwargs["tag"]))
            if tactic in PINNED or tactic not in (
                DOC_KEYED | ADDRESS_KEYED | TAG_KEYED
            ):
                return self._pin_nodes(service)[0]
        return None

    # -- admin -----------------------------------------------------------------

    def _admin(self, request: Request) -> Any:
        method = request.method
        if method == "list_services":
            names: set[str] = set()
            for _, result in self._broadcast(request, skip_broken=False):
                names.update(result or [])
            return sorted(names)
        if method in ("provision_application", "provision_tactic"):
            self._log_provision(request)
            if method == "provision_application":
                application = request.kwargs.get("application")
                with self._lock:
                    if application and (application
                                        not in self._applications):
                        self._applications.append(application)
            else:
                from repro.spi.context import service_name

                kwargs = request.kwargs
                with self._lock:
                    self._tactic_services[service_name(
                        kwargs["application"], kwargs["field"],
                        kwargs["tactic"],
                    )] = kwargs["tactic"]
        results = self._broadcast(request, skip_broken=False)
        return results[-1][1]

    def _log_provision(self, request: Request) -> None:
        bare = Request(request.service, request.method,
                       dict(request.kwargs))
        with self._lock:
            self._provision_log.append(bare)

    def _broadcast_last(self, request: Request) -> Any:
        results = self._broadcast(request, skip_broken=False)
        for _, result in reversed(results):
            if result is not None:
                return result
        return results[-1][1]

    # -- document store --------------------------------------------------------

    def _docs(self, request: Request) -> Any:
        _, forward, order = self._topology()
        method, kwargs = request.method, request.kwargs
        if len(order) == 1 and forward is None:
            return self._timed_call(order[0], request)
        if method == "insert":
            return self._routed_write(self._doc_key(kwargs), request)
        if method == "insert_many":
            return self._docs_insert_many(request)
        if method == "get":
            return self._docs_get(request)
        if method == "get_many":
            return self._docs_get_many(request)
        if method == "replace":
            return self._docs_replace(request)
        if method == "delete":
            return self._docs_delete(request)
        if method == "count":
            return self._docs_count(request)
        if method in ("all_ids", "find_plain"):
            merged: list[str] = []
            seen: set[str] = set()
            for _, part in self._broadcast(request):
                for doc_id in part or []:
                    if doc_id not in seen:
                        seen.add(doc_id)
                        merged.append(doc_id)
            limit = kwargs.get("limit")
            if method == "find_plain" and limit is not None:
                return merged[:limit]
            return merged
        if method == "find_text":
            return self._docs_find_text(request)
        return self._broadcast_last(request)

    @staticmethod
    def _doc_key(kwargs: dict[str, Any]) -> str:
        document = kwargs.get("document") or {}
        doc_id = document.get("_id")
        if not doc_id:
            raise TransportError(
                "sharded document writes require an explicit _id"
            )
        return doc_id

    def _docs_insert_many(self, request: Request) -> list[str]:
        documents = list(request.kwargs.get("documents") or [])
        if not documents:
            return []
        ring, _, _ = self._topology()
        if self._replication() > 1:
            # Per-document routed writes: owner chains differ per key.
            ids = []
            for document in documents:
                sub = Request(request.service, "insert",
                              {"document": document})
                ids.append(self._routed_write(document["_id"], sub))
            return ids
        groups: dict[str, tuple[list[int], list[dict]]] = {}
        for index, document in enumerate(documents):
            doc_id = document.get("_id")
            if not doc_id:
                raise TransportError(
                    "sharded document writes require an explicit _id"
                )
            indices, docs = groups.setdefault(ring.owner(doc_id),
                                              ([], []))
            indices.append(index)
            docs.append(document)
        ids: list[str | None] = [None] * len(documents)
        for name in sorted(groups):
            indices, docs = groups[name]
            # The derived key is deterministic across retries of the
            # same logical insert_many, so the per-host dedup window
            # still applies at-most-once per sub-batch.
            idem = f"{request.idem}.{name}" if request.idem else ""
            sub = Request(request.service, "insert_many",
                          {**request.kwargs, "documents": docs},
                          idem=idem)
            returned = self._timed_call(name, sub)
            for slot, doc_id in zip(indices, returned):
                ids[slot] = doc_id
        return [doc_id for doc_id in ids if doc_id is not None]

    def _docs_get(self, request: Request) -> Any:
        doc_id = request.kwargs["doc_id"]
        try:
            return self._routed_read(doc_id, request)
        except RemoteError as exc:
            prev = self._prev_owner(doc_id)
            if prev is None or exc.remote_type != "DocumentNotFound":
                raise
            return self._timed_call(prev, request)

    def _docs_replace(self, request: Request) -> Any:
        doc_id = self._doc_key(request.kwargs)
        try:
            return self._routed_write(doc_id, request)
        except RemoteError as exc:
            prev = self._prev_owner(doc_id)
            if prev is None or exc.remote_type != "DocumentNotFound":
                raise
            return self._timed_call(prev, request)

    def _docs_delete(self, request: Request) -> bool:
        doc_id = request.kwargs["doc_id"]
        existed = bool(self._routed_write(doc_id, request))
        if not existed:
            prev = self._prev_owner(doc_id)
            if prev is not None:
                existed = bool(self._timed_call(prev, request))
        return existed

    def _docs_get_many(self, request: Request) -> list[dict]:
        requested = list(request.kwargs.get("doc_ids") or [])
        ring, forward, _ = self._topology()
        replication = self._replication()
        found: dict[str, dict] = {}
        missing: list[str] = []
        seen: set[str] = set()
        for doc_id in requested:
            if doc_id not in seen:
                seen.add(doc_id)
                missing.append(doc_id)
        for attempt in range(replication):
            if not missing:
                break
            groups: dict[str, list[str]] = {}
            for doc_id in missing:
                owners = ring.owners(doc_id, replication)
                if attempt < len(owners):
                    groups.setdefault(owners[attempt], []).append(doc_id)
            deferred: list[str] = []
            for name in sorted(groups):
                ids = groups[name]
                sub = Request(request.service, "get_many",
                              {**request.kwargs, "doc_ids": ids})
                try:
                    stored = self._timed_call(name, sub)
                except TransportError:
                    if attempt + 1 < replication:
                        with self._lock:
                            self._failovers += 1
                        deferred.extend(ids)
                        continue
                    raise
                for item in stored:
                    found[item["_id"]] = item
                deferred.extend(i for i in ids if i not in found)
            missing = deferred
        if missing and forward is not None:
            groups = {}
            for doc_id in missing:
                prev = self._prev_owner(doc_id)
                if prev is not None:
                    groups.setdefault(prev, []).append(doc_id)
            for name in sorted(groups):
                sub = Request(request.service, "get_many",
                              {**request.kwargs,
                               "doc_ids": groups[name]})
                for item in self._timed_call(name, sub):
                    found[item["_id"]] = item
        return [found[i] for i in requested if i in found]

    def _docs_count(self, request: Request) -> int:
        if self._replication() == 1:
            return sum(
                part or 0 for _, part in self._broadcast(request)
            )
        # Replicated rows would double-count; gather ids and dedupe.
        query = request.kwargs.get("query")
        if query:
            sub = Request(request.service, "find_plain",
                          {"query": query})
        else:
            sub = Request(request.service, "all_ids", {})
        ids: set[str] = set()
        for _, part in self._broadcast(sub):
            ids.update(part or [])
        return len(ids)

    def _docs_find_text(self, request: Request) -> list[list]:
        limit = request.kwargs.get("limit", 10)
        best: dict[str, float] = {}
        for _, part in self._broadcast(request):
            for doc_id, score in part or []:
                if doc_id not in best or score > best[doc_id]:
                    best[doc_id] = score
        ranked = sorted(best.items(), key=lambda hit: (-hit[1], hit[0]))
        return [[doc_id, score] for doc_id, score in ranked[:limit]]

    # -- tactic services -------------------------------------------------------

    @staticmethod
    def _address_key(value: Any) -> str | bytes:
        if isinstance(value, (str, bytes)):
            return value
        return repr(value)

    def _pin_nodes(self, service: str) -> list[str]:
        with self._lock:
            pins = self._pins.get(service)
            if pins is None:
                pins = self._ring.owners(service, self._replication())
                self._pins[service] = pins
            return list(pins)

    def _tactic(self, request: Request) -> Any:
        service, method, kwargs = (request.service, request.method,
                                   request.kwargs)
        tactic = _tactic_of(service)
        if method == "setup":
            self._log_provision(request)
            results = self._broadcast(request, skip_broken=False)
            return results[-1][1]
        _, forward, order = self._topology()
        if len(order) == 1 and forward is None:
            return self._timed_call(order[0], request)

        if tactic in DOC_KEYED:
            return self._doc_keyed(tactic, request)
        if tactic in ADDRESS_KEYED:
            return self._address_keyed(tactic, request)
        if tactic in TAG_KEYED:
            return self._tag_keyed(request)
        return self._pinned(service, request)

    def _doc_keyed(self, tactic: str, request: Request) -> Any:
        method, kwargs = request.method, request.kwargs
        if "doc_id" in kwargs:
            if method == "retrieve":
                result = self._routed_read(kwargs["doc_id"], request)
                if result is None:
                    prev = self._prev_owner(kwargs["doc_id"])
                    if prev is not None:
                        result = self._timed_call(prev, request)
                return result
            if method in MUTATING_TACTIC_METHODS:
                return self._routed_write(kwargs["doc_id"], request)
        if method in ("eq_query", "range_query"):
            return self._merge_concat(self._broadcast(request))
        if method == "ordered_range" and tactic in ORDERED:
            return self._ordered_range(tactic, request)
        if method == "aggregate" and tactic in AGGREGATE:
            return self._aggregate(request)
        return self._broadcast_last(request)

    def _address_keyed(self, tactic: str, request: Request) -> Any:
        method, kwargs = request.method, request.kwargs
        if method in MUTATING_TACTIC_METHODS and "address" in kwargs:
            return self._routed_write(
                self._address_key(kwargs["address"]), request
            )
        if method == "eq_query":
            results = self._broadcast(request)
            if tactic == "mitra":
                # Address slots align across shards: the owning shard
                # answers its slot, the rest return None.
                merged: list[Any] = []
                for _, part in results:
                    part = part or []
                    while len(merged) < len(part):
                        merged.append(None)
                    for index, payload in enumerate(part):
                        if merged[index] is None:
                            merged[index] = payload
                return merged
            return self._merge_concat(results)
        return self._broadcast_last(request)

    def _tag_keyed(self, request: Request) -> Any:
        method, kwargs = request.method, request.kwargs
        if method in MUTATING_TACTIC_METHODS and "tag" in kwargs:
            return self._routed_write(
                self._address_key(kwargs["tag"]), request
            )
        if method == "eq_query":
            # Node order puts older nodes first, so entries still on a
            # migration source precede entries written to the new owner:
            # the gateway's tombstone scan sees causal order.
            merged: list[Any] = []
            seen: set[Any] = set()
            for _, part in self._broadcast(request):
                for entry in part or []:
                    key = _freeze(entry)
                    if key not in seen:
                        seen.add(key)
                        merged.append(entry)
            return merged
        return self._broadcast_last(request)

    def _pinned(self, service: str, request: Request) -> Any:
        pins = self._pin_nodes(service)
        if request.method in MUTATING_TACTIC_METHODS:
            result: Any = None
            delivered = False
            last: Exception | None = None
            for index, name in enumerate(pins):
                try:
                    value = self._timed_call(name, request)
                except CircuitOpenError as exc:
                    last = exc
                    with self._lock:
                        if delivered:
                            self._replica_errors += 1
                        else:
                            self._failovers += 1
                    continue
                except TransportError as exc:
                    if index == 0:
                        raise
                    last = exc
                    with self._lock:
                        self._replica_errors += 1
                    continue
                if not delivered:
                    result = value
                    delivered = True
            if not delivered:
                assert last is not None
                raise last
            return result
        return self._attempt_chain(pins, request)

    # -- scatter merges --------------------------------------------------------

    def _merge_concat(self, results: list[tuple[str, Any]]) -> list:
        """Union-merge of per-shard id/entry lists.

        Pure-string results (DET/blind-index/OPE/ORE id sets, Sophos
        chains) come back sorted — the answer a single node holding all
        entries would give; mixed payloads keep node-order concat.
        """
        merged: list[Any] = []
        seen: set[Any] = set()
        all_str = True
        for _, part in results:
            for item in part or []:
                key = _freeze(item)
                if key in seen:
                    continue
                seen.add(key)
                merged.append(item)
                if not isinstance(item, str):
                    all_str = False
        if all_str:
            return sorted(merged)
        return merged

    def _ordered_range(self, tactic: str, request: Request) -> list[str]:
        kwargs = request.kwargs
        limit = kwargs.get("limit")
        descending = bool(kwargs.get("descending", False))
        keyed_kwargs: dict[str, Any] = {
            "low": kwargs.get("low"),
            "high": kwargs.get("high"),
            "descending": descending,
        }
        if limit is not None:
            # Each shard returns its own first ``limit`` in direction;
            # the global answer is within the union of those prefixes.
            keyed_kwargs["limit"] = limit
        keyed = Request(request.service, "ordered_range_keyed",
                        keyed_kwargs)
        pairs: list[tuple[Any, str]] = []
        for _, part in self._broadcast(keyed):
            for key, doc_id in part or []:
                pairs.append((key, doc_id))
        if tactic == "ore":
            from repro.crypto.ore import OreCiphertext, compare

            def order(a: tuple[Any, str], b: tuple[Any, str]) -> int:
                verdict = compare(OreCiphertext.from_bytes(a[0]),
                                  OreCiphertext.from_bytes(b[0]))
                if verdict:
                    return verdict
                return (a[1] > b[1]) - (a[1] < b[1])

            pairs.sort(key=functools.cmp_to_key(order))
        else:
            pairs.sort(key=lambda pair: (pair[0], pair[1]))
        if descending:
            pairs.reverse()
        ids: list[str] = []
        seen: set[str] = set()
        for _, doc_id in pairs:
            if doc_id not in seen:
                seen.add(doc_id)
                ids.append(doc_id)
        if limit is not None:
            return ids[:limit]
        return ids

    def _aggregate(self, request: Request) -> Any:
        service, kwargs = request.service, request.kwargs
        doc_ids = kwargs.get("doc_ids")
        ring, _, _ = self._topology()
        replication = self._replication()
        parts: list[Any] = []
        if doc_ids is None:
            for _, part in self._broadcast(request):
                parts.append(part)
        else:
            remaining = list(dict.fromkeys(doc_ids))
            for attempt in range(replication):
                if not remaining:
                    break
                groups: dict[str, list[str]] = {}
                for doc_id in remaining:
                    owners = ring.owners(doc_id, replication)
                    if attempt < len(owners):
                        groups.setdefault(owners[attempt],
                                          []).append(doc_id)
                deferred: list[str] = []
                for name in sorted(groups):
                    ids = groups[name]
                    sub = Request(service, request.method,
                                  {**kwargs, "doc_ids": ids})
                    try:
                        parts.append(self._timed_call(name, sub))
                    except CircuitOpenError:
                        if attempt + 1 < replication:
                            with self._lock:
                                self._failovers += 1
                            deferred.extend(ids)
                            continue
                        raise
                remaining = deferred
        live = [part for part in parts
                if part and part.get("count", 0) > 0]
        if not live:
            return parts[0] if parts else None
        if len(live) == 1:
            return live[0]
        combine = Request(service, "combine", {"parts": live})
        ring, _, order = self._topology()
        return self._attempt_chain(order, combine)
