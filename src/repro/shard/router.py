"""ShardedTransport: hash-ring routing + scatter/gather over N zones.

The router implements the standard :class:`~repro.net.transport.Transport`
interface over a set of named per-node transports, so the gateway (and
every tactic protocol above it) stays oblivious to the topology:

* **Key-routed operations** — document CRUD by ``_id``, DET/RND/OPE/ORE
  token and ciphertext writes by ``doc_id``, Sophos/Mitra index writes by
  ``address``, stateless-SSE postings by ``tag`` — go to the ring owner
  of their shard key (plus replicas when ``replication > 1``).
* **Scatter/gather operations** — Sophos search, boolean BIEX queries,
  range scans, ``count``, ``all_ids`` — broadcast to every node and the
  router merges per tactic semantics (set union, elementwise
  first-non-None for Mitra address slots, homomorphic ``combine`` for
  Paillier/ElGamal partials, an order-merge for OPE/ORE scans).
* **Pinned services** — BIEX two-level / ZMF (whose cross-anchor tag
  dedup needs all pairs on one node) and unknown tactics — live whole on
  ``replication`` ring-chosen nodes and move only via the generic
  namespace dump/load protocol during node removal.

Reads fail over along the replica chain on an open circuit breaker
(reusing the PR 2 resilience machinery *below* the router: wrap each
per-node transport in a :class:`~repro.net.resilience.ResilientTransport`
to get per-shard breakers).  During an online reshard the router keeps
the previous ring as a *forwarding table*: reads that miss on the new
owner fall back to the previous owner, so a migration in flight never
makes a document or index entry unreachable.

**Writes fan out in parallel.**  A batch frame splits into per-owner
(chain) sub-batches that scatter concurrently on the same pool the
search gather uses, so a write touching K shards costs one round trip
instead of K.  Replicated writes deliver to every chain member
concurrently; :attr:`~repro.shard.config.ShardConfig.write_quorum` acks
after W confirmed replicas and completes the remainder asynchronously
(bounded breaker-aware retries — the idempotency keys minted above the
router keep redeliveries at-most-once per host).  Per-shard enqueue
order is preserved: slots sharing an owner chain travel in one frame in
slot order, and while a migration's forwarding table is active the
loose slots (which include every document write) run sequentially so
forwarding-epoch writes stay ordered per shard.

Membership changes bump ``topology_epoch`` — the planner drops its
shape-keyed plan cache when the epoch moves.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextvars
import functools
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    wait,
)
from typing import Any, Iterable, Sequence

from repro.errors import CircuitOpenError, RemoteError, TransportError
from repro.net.latency import NetworkStats, roll_up
from repro.net.rpc import Request, Response
from repro.net.transport import Transport
from repro.shard.config import ShardConfig
from repro.shard.ring import HashRing

#: Tactics whose cloud entries are keyed by document id: every index
#: entry of a document co-locates with the document itself.
DOC_KEYED = frozenset({
    "det", "rnd", "blind-index", "ope", "ore", "paillier", "elgamal",
})
#: Tactics keyed by opaque index address (forward-private SSE chains).
ADDRESS_KEYED = frozenset({"sophos", "mitra"})
#: Tactics keyed by keyword tag (append-only posting lists).
TAG_KEYED = frozenset({"sse-stateless"})
#: Tactics needing cross-entry state on one node (BIEX cross-anchor tag
#: dedup, ZMF counting filter).  Unknown tactic names are pinned too —
#: the conservative default for third-party registrations.
PINNED = frozenset({"biex-2lev", "biex-zmf"})
#: Order-revealing tactics: ``ordered_range`` scatters are rewritten to
#: ``ordered_range_keyed`` so the router can merge by ciphertext order.
ORDERED = frozenset({"ope", "ore"})
#: Aggregating tactics: partial aggregates merge through a cloud-side
#: ``combine`` call (the router never touches the homomorphic math).
AGGREGATE = frozenset({"paillier", "elgamal"})

#: Cloud-tactic methods that mutate index state (routed as writes).
MUTATING_TACTIC_METHODS = frozenset({
    "insert", "update", "delete", "add", "remove", "upsert",
    "insert_terms", "update_terms", "delete_terms",
})


#: Thread-name prefix of the scatter pool.  Work that already runs *on*
#: a scatter worker degrades to its serial path instead of submitting
#: nested jobs, so a saturated pool can never deadlock on itself.
_SCATTER_THREAD_PREFIX = "shard-scatter"


def _on_scatter_thread() -> bool:
    return threading.current_thread().name.startswith(
        _SCATTER_THREAD_PREFIX
    )


def _tactic_of(service: str) -> str:
    return service.rsplit("/", 1)[-1]


def _freeze(value: Any) -> Any:
    """A hashable key for wire values (lists arrive un-tupled)."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted(
            (key, _freeze(item)) for key, item in value.items()
        ))
    return value


class ShardedTransport(Transport):
    """Routes one gateway onto N named per-node transports."""

    def __init__(self, nodes: Iterable[tuple[str, Transport]],
                 config: ShardConfig | None = None):
        self.config = config or ShardConfig()
        self._nodes: dict[str, Transport] = {}
        self._order: list[str] = []
        for name, transport in nodes:
            if name in self._nodes:
                raise TransportError(f"duplicate shard node {name!r}")
            self._nodes[name] = transport
            self._order.append(name)
        if not self._nodes:
            raise TransportError("sharded transport needs at least one node")
        self._ring = HashRing(self._order, vnodes=self.config.vnodes,
                              seed=self.config.seed)
        #: Previous ring while a reshard is in flight (forwarding table).
        self._forward: HashRing | None = None
        self._epoch = 1
        self._lock = threading.RLock()
        # Per-operation timing sink.  Context-local (not thread-local) so
        # an operation that hops onto ``asyncio.to_thread`` workers keeps
        # appending to its own list — the copied context shares the list
        # object — while scatter-pool workers (plain threads, no context
        # copy) still accumulate their own rows for the drain in
        # ``_dispatch_loose``.
        self._timings_var: contextvars.ContextVar[
            list[tuple[str, float]] | None
        ] = contextvars.ContextVar(f"shard_timings_{id(self):x}",
                                   default=None)
        self._pool: ThreadPoolExecutor | None = None
        self._failovers = 0
        self._replica_errors = 0
        self._scatters = 0
        #: Post-ack replica deliveries still in flight (quorum writes).
        self._async_writes: set[Future] = set()
        #: The same in-flight legs keyed by node: a later write's leg to
        #: a node waits these out first, so two writes to one key can
        #: never land on a replica in inverted order (see
        #: :meth:`_chain_launch`).
        self._async_by_node: dict[str, set[Future]] = {}
        self._async_retries = 0
        self._async_failures = 0
        #: Provisioning calls replayed onto every joining node.
        self._provision_log: list[Request] = []
        self._applications: list[str] = []
        self._tactic_services: dict[str, str] = {}
        self._pins: dict[str, list[str]] = {}

    # -- topology --------------------------------------------------------------

    def topology_epoch(self) -> int:
        with self._lock:
            return self._epoch

    def node_names(self) -> list[str]:
        with self._lock:
            return list(self._order)

    def node_transport(self, name: str) -> Transport:
        return self._nodes[name]

    def ring_spec(self, self_node: str | None = None) -> dict[str, Any]:
        with self._lock:
            return self._ring.spec(self_node)

    def forwarding_active(self) -> bool:
        with self._lock:
            return self._forward is not None

    @property
    def applications(self) -> list[str]:
        with self._lock:
            return list(self._applications)

    def tactic_services(self) -> dict[str, str]:
        """Provisioned tactic service name -> tactic name."""
        with self._lock:
            return dict(self._tactic_services)

    @property
    def provision_log(self) -> list[Request]:
        with self._lock:
            return list(self._provision_log)

    def pins(self) -> dict[str, list[str]]:
        with self._lock:
            return {name: list(p) for name, p in self._pins.items()}

    def set_pins(self, service: str, nodes: Sequence[str]) -> None:
        with self._lock:
            self._pins[service] = list(nodes)

    def _topology(self) -> tuple[HashRing, HashRing | None, list[str]]:
        with self._lock:
            return self._ring, self._forward, list(self._order)

    def _replication(self) -> int:
        return max(1, min(self.config.replication, len(self._order)))

    def _write_quorum(self) -> int:
        """Acks required before a replicated write returns (clamped)."""
        replication = self._replication()
        quorum = self.config.write_quorum
        if quorum <= 0 or quorum > replication:
            return replication
        return quorum

    def _parallel_writes(self) -> bool:
        """Whether this thread may fan a write out on the scatter pool."""
        return self.config.parallel_fanout and not _on_scatter_thread()

    # -- membership (driven by repro.shard.rebalance.Resharder) ----------------

    def begin_join(self, name: str, transport: Transport) -> None:
        """Admit a node: replay provisioning, then extend the ring.

        The previous ring becomes the forwarding table until
        :meth:`finish_migration`, so reads stay correct while keys move.
        """
        for request in self.provision_log:
            transport.call_request(request)
        with self._lock:
            if name in self._nodes:
                raise TransportError(f"shard node {name!r} already joined")
            self._forward = HashRing.from_spec(self._ring.spec())
            self._nodes[name] = transport
            self._order.append(name)
            ring = HashRing.from_spec(self._ring.spec())
            ring.add(name)
            self._ring = ring
            self._epoch += 1

    def begin_leave(self, name: str) -> None:
        """Retire a node from the ring but keep its transport reachable
        (forwarded reads and migration still address it)."""
        with self._lock:
            if name not in self._nodes:
                raise TransportError(f"unknown shard node {name!r}")
            if len(self._order) == 1:
                raise TransportError("cannot remove the last shard node")
            self._forward = HashRing.from_spec(self._ring.spec())
            ring = HashRing.from_spec(self._ring.spec())
            ring.remove(name)
            self._ring = ring
            self._epoch += 1

    def finish_migration(self) -> None:
        with self._lock:
            self._forward = None
            self._epoch += 1

    def finish_leave(self, name: str) -> None:
        with self._lock:
            self._forward = None
            self._nodes.pop(name, None)
            if name in self._order:
                self._order.remove(name)
            self._epoch += 1

    # -- timing / stats --------------------------------------------------------

    def _timings(self) -> list[tuple[str, float]]:
        timings = self._timings_var.get()
        if timings is None:
            timings = []
            self._timings_var.set(timings)
        return timings

    def _record_timing(self, name: str, seconds: float) -> None:
        self._timings().append((name, seconds))

    def _record_parallel_timings(
        self, rows: Iterable[tuple[str, float]]
    ) -> None:
        """Attribute one parallel fan-out's wall clock per node.

        Concurrent frames to the same node overlap in time, so summing
        their durations would double-count that node's share in the
        ``Shard:`` planner-report lines; the longest delivery is the
        node's wall-clock contribution for this scatter.
        """
        longest: dict[str, float] = {}
        for name, seconds in rows:
            if seconds > longest.get(name, -1.0):
                longest[name] = seconds
        for name, seconds in longest.items():
            self._record_timing(name, seconds)

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        # Cleared in place: context copies (``to_thread`` hops) share the
        # list object, so a drain from any of them must empty the sink
        # every sharer sees, not just rebind its own context slot.
        timings = self._timings()
        drained = list(timings)
        timings.clear()
        return drained

    def stats(self) -> NetworkStats:
        return roll_up(self.labeled_stats())

    def labeled_stats(self) -> dict[str, NetworkStats]:
        labeled: dict[str, NetworkStats] = {}
        with self._lock:
            nodes = list(self._nodes.items())
            own = NetworkStats(failovers=self._failovers)
        for name, transport in nodes:
            labeled[f"shard:{name}"] = roll_up(transport.labeled_stats())
        labeled["router"] = own
        return labeled

    def call_labeled(self, service: str, method: str,
                     **kwargs: Any) -> dict[str, Any]:
        """Broadcast to every shard, results keyed ``shard:<name>`` —
        the labels match :meth:`labeled_stats`, so the integrity
        ledger's per-shard watermarks line up with the per-shard
        traffic counters."""
        request = Request(service, method, kwargs)
        return {
            f"shard:{name}": result
            for name, result in self._broadcast(request,
                                                skip_broken=False)
        }

    def scatter_count(self) -> int:
        with self._lock:
            return self._scatters

    def replica_error_count(self) -> int:
        with self._lock:
            return self._replica_errors

    def async_write_failures(self) -> int:
        """Post-ack replica deliveries that exhausted their retries."""
        with self._lock:
            return self._async_failures

    def pending_async_writes(self) -> int:
        with self._lock:
            return len(self._async_writes)

    def drain_async_writes(self, timeout: float | None = None) -> int:
        """Wait out post-ack replica deliveries still in flight.

        Returns the number of deliveries waited for.  Call before
        fingerprinting state, migrating keys, or closing: with
        ``write_quorum < replication`` a write returns before its
        slowest replicas and this is the durability barrier.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        seen: set[Future] = set()
        while True:
            with self._lock:
                pending = [f for f in self._async_writes
                           if f not in seen]
            if not pending:
                return len(seen)
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return len(seen)
            done, _ = wait(pending, timeout=remaining)
            if not done:
                return len(seen)
            seen.update(done)

    def close(self) -> None:
        self.drain_async_writes(timeout=5.0)
        with self._lock:
            pool, self._pool = self._pool, None
            nodes = list(self._nodes.values())
        if pool is not None:
            pool.shutdown(wait=False)
        for transport in nodes:
            transport.close()

    # -- low-level node calls --------------------------------------------------

    def _timed_call(self, name: str, request: Request) -> Any:
        node = self._nodes[name]
        started = time.perf_counter()
        try:
            return node.call_request(request)
        finally:
            self._record_timing(name, time.perf_counter() - started)

    def _timed_batch(self, name: str,
                     requests: Sequence[Request]) -> list[Response]:
        node = self._nodes[name]
        started = time.perf_counter()
        try:
            return node.call_batch(list(requests))
        finally:
            self._record_timing(name, time.perf_counter() - started)

    def _scatter_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(2, self.config.fanout_workers),
                    thread_name_prefix=_SCATTER_THREAD_PREFIX,
                )
            return self._pool

    # -- replicated chain delivery ---------------------------------------------

    def _deliver(self, name: str, payload: Any, is_batch: bool,
                 state: dict, after: tuple[Future, ...] = ()
                 ) -> tuple[str, Any, float, Exception | None]:
        """One delivery leg, run on the scatter pool (leaf job: never
        submits nested work).

        ``after`` holds this node's still-detached legs from earlier
        acked writes: they are waited out (success or failure — only
        ordering matters) before this leg delivers, so a quorum-acked
        write to a key can never be overtaken on a replica by a later
        write to the same key.  Every ``after`` future was submitted
        strictly earlier than this leg, so the pool's FIFO queue keeps
        the wait deadlock-free.  The wait happens before the timing
        clock starts — barrier time is not delivery time.

        Before the caller acked (``state["acked"]`` unset) a failure
        reports immediately — the caller decides failover semantics.
        After the ack the leg is an asynchronous replica completion and
        retries itself with bounded backoff (an open breaker or a lost
        frame is worth re-attempting once the window passed); the
        request's idempotency key makes every redelivery at-most-once.
        """
        if after:
            wait(after)
        attempts = 0
        while True:
            node = self._nodes.get(name)
            started = time.perf_counter()
            try:
                if node is None:
                    raise TransportError(
                        f"shard node {name!r} left the topology"
                    )
                if is_batch:
                    result = node.call_batch(list(payload))
                else:
                    result = node.call_request(payload)
                return name, result, time.perf_counter() - started, None
            except TransportError as exc:
                elapsed = time.perf_counter() - started
                retryable = (not isinstance(exc, RemoteError)
                             and node is not None)
                if (not retryable or not state.get("acked")
                        or attempts >= self.config.async_write_retries):
                    return name, None, elapsed, exc
                attempts += 1
                with self._lock:
                    self._async_retries += 1
                backoff = (self.config.async_write_backoff_s
                           * (2 ** (attempts - 1)))
                if backoff > 0:
                    time.sleep(backoff)

    def _chain_launch(self, owners: Sequence[str], payload: Any,
                      is_batch: bool) -> dict:
        """Start one write's replica deliveries concurrently."""
        pool = self._scatter_pool()
        state: dict = {"acked": False}
        futures: dict[Future, int] = {}
        with self._lock:
            barriers = {
                name: tuple(self._async_by_node.get(name, ()))
                for name in owners
            }
        for position, name in enumerate(owners):
            future = pool.submit(self._deliver, name, payload, is_batch,
                                 state, barriers[name])
            futures[future] = position
        return {"state": state, "futures": futures,
                "owners": tuple(owners)}

    def _chain_gather(self, launch: dict) -> tuple[Any, list]:
        """Wait a launched chain out to its quorum.

        Returns ``(value, timing_rows)`` where ``value`` is the result
        of the best-placed (lowest chain position) successful delivery.
        Legacy mode (``write_quorum=0``) waits for every leg and
        succeeds if any did — exactly the sequential semantics; an
        explicit quorum returns after W acks and fails if fewer than W
        legs ever succeed.  A primary (position 0) failure that is not
        an open breaker aborts before the ack, as it always has — the
        resilience layer above owns that redelivery.
        """
        state: dict = launch["state"]
        futures: dict[Future, int] = launch["futures"]
        quorum = min(self._write_quorum(), len(futures))
        legacy = self.config.write_quorum <= 0
        successes: dict[int, Any] = {}
        rows: list[tuple[str, float]] = []
        failure: Exception | None = None
        abort: Exception | None = None
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                position = futures[future]
                name, value, seconds, error = future.result()
                rows.append((name, seconds))
                if error is None:
                    successes[position] = value
                    continue
                if position == 0:
                    if isinstance(error, CircuitOpenError):
                        failure = error
                        with self._lock:
                            self._failovers += 1
                    else:
                        abort = error
                else:
                    failure = error
                    with self._lock:
                        self._replica_errors += 1
            if abort is not None:
                break
            if not legacy and len(successes) >= quorum:
                break
        if pending:
            owners = launch["owners"]
            self._detach_async(
                pending, state,
                {future: owners[futures[future]] for future in pending},
            )
        if abort is not None:
            raise abort
        if not successes:
            assert failure is not None
            raise failure
        if not legacy and len(successes) < quorum:
            assert failure is not None
            raise failure
        return successes[min(successes)], rows

    def _detach_async(self, futures: Iterable[Future], state: dict,
                      names: dict[Future, str]) -> None:
        """Hand the unfinished legs of an acked write to the background."""
        state["acked"] = True
        with self._lock:
            self._async_writes.update(futures)
            for future in futures:
                self._async_by_node.setdefault(
                    names[future], set()
                ).add(future)
        for future in futures:
            future.add_done_callback(
                functools.partial(self._async_done, name=names[future])
            )

    def _async_done(self, future: Future, name: str | None = None) -> None:
        with self._lock:
            self._async_writes.discard(future)
            if name is not None:
                legs = self._async_by_node.get(name)
                if legs is not None:
                    legs.discard(future)
                    if not legs:
                        del self._async_by_node[name]
        try:
            _, _, _, error = future.result()
        except Exception as exc:  # noqa: BLE001 - background accounting
            error = exc
        if error is not None:
            with self._lock:
                self._replica_errors += 1
                self._async_failures += 1

    # -- native async chain delivery ---------------------------------------------

    async def _deliver_async(self, name: str, payload: Any,
                             is_batch: bool, state: dict,
                             after: tuple[Future, ...] = ()
                             ) -> tuple[str, Any, float, Exception | None]:
        """Async mirror of :meth:`_deliver`: one delivery leg as a task.

        Same pre-ack/post-ack contract and bounded backoff, but the
        retries back off with ``asyncio.sleep`` and the node call rides
        the node transport's async path — fan-out holds loop tasks, not
        pool threads.  The ``after`` ordering barrier (this node's
        still-detached earlier legs) is awaited, not blocked on, and a
        barrier leg's own failure is irrelevant here — only its
        completion order matters.
        """
        if after:
            await asyncio.gather(
                *(asyncio.wrap_future(leg) for leg in after),
                return_exceptions=True,
            )
        attempts = 0
        while True:
            node = self._nodes.get(name)
            started = time.perf_counter()
            try:
                if node is None:
                    raise TransportError(
                        f"shard node {name!r} left the topology"
                    )
                if is_batch:
                    result = await node.call_batch_async(list(payload))
                else:
                    result = await node.call_request_async(payload)
                return name, result, time.perf_counter() - started, None
            except TransportError as exc:
                elapsed = time.perf_counter() - started
                retryable = (not isinstance(exc, RemoteError)
                             and node is not None)
                if (not retryable or not state.get("acked")
                        or attempts >= self.config.async_write_retries):
                    return name, None, elapsed, exc
                attempts += 1
                with self._lock:
                    self._async_retries += 1
                backoff = (self.config.async_write_backoff_s
                           * (2 ** (attempts - 1)))
                if backoff > 0:
                    await asyncio.sleep(backoff)

    def _chain_launch_async(self, owners: Sequence[str], payload: Any,
                            is_batch: bool) -> dict:
        """Start one write's replica deliveries as loop tasks."""
        state: dict = {"acked": False}
        tasks: dict[asyncio.Task, int] = {}
        with self._lock:
            barriers = {
                name: tuple(self._async_by_node.get(name, ()))
                for name in owners
            }
        for position, name in enumerate(owners):
            task = asyncio.ensure_future(
                self._deliver_async(name, payload, is_batch, state,
                                    barriers[name])
            )
            tasks[task] = position
        return {"state": state, "futures": tasks,
                "owners": tuple(owners)}

    async def _chain_gather_async(self, launch: dict) -> tuple[Any, list]:
        """Async :meth:`_chain_gather`: identical quorum semantics.

        If the surrounding operation is cancelled (deadline), the
        still-running legs are detached to the background first so an
        in-flight replicated write is never silently abandoned — the
        durability barrier (:meth:`drain_async_writes`) still sees it.
        """
        state: dict = launch["state"]
        tasks: dict[asyncio.Task, int] = launch["futures"]
        quorum = min(self._write_quorum(), len(tasks))
        legacy = self.config.write_quorum <= 0
        successes: dict[int, Any] = {}
        rows: list[tuple[str, float]] = []
        failure: Exception | None = None
        abort: Exception | None = None
        pending = set(tasks)
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    position = tasks[task]
                    name, value, seconds, error = task.result()
                    rows.append((name, seconds))
                    if error is None:
                        successes[position] = value
                        continue
                    if position == 0:
                        if isinstance(error, CircuitOpenError):
                            failure = error
                            with self._lock:
                                self._failovers += 1
                        else:
                            abort = error
                    else:
                        failure = error
                        with self._lock:
                            self._replica_errors += 1
                if abort is not None:
                    break
                if not legacy and len(successes) >= quorum:
                    break
        except asyncio.CancelledError:
            if pending:
                self._detach_async_tasks(pending, state, tasks,
                                         launch["owners"])
            raise
        if pending:
            self._detach_async_tasks(pending, state, tasks,
                                     launch["owners"])
        if abort is not None:
            raise abort
        if not successes:
            assert failure is not None
            raise failure
        if not legacy and len(successes) < quorum:
            assert failure is not None
            raise failure
        return successes[min(successes)], rows

    def _detach_async_tasks(self, tasks: Iterable[asyncio.Task],
                            state: dict,
                            positions: dict[asyncio.Task, int],
                            owners: Sequence[str]) -> None:
        """Background the unfinished legs of an acked write.

        Each loop task is bridged to a ``concurrent.futures.Future``
        proxy registered in ``_async_writes`` (and, per node, in
        ``_async_by_node`` so later writes order behind it), so the
        existing *sync* durability barrier (:meth:`drain_async_writes`,
        called from any thread) waits async-delivered replicas out
        exactly like pool-delivered ones.
        """
        state["acked"] = True
        for task in tasks:
            name = owners[positions[task]]
            proxy: Future = concurrent.futures.Future()
            with self._lock:
                self._async_writes.add(proxy)
                self._async_by_node.setdefault(name, set()).add(proxy)
            proxy.add_done_callback(
                functools.partial(self._async_done, name=name)
            )

            def _bridge(finished: asyncio.Task, proxy: Future = proxy
                        ) -> None:
                if finished.cancelled():
                    proxy.set_exception(
                        TransportError("replica delivery cancelled")
                    )
                elif finished.exception() is not None:
                    proxy.set_exception(finished.exception())
                else:
                    proxy.set_result(finished.result())

            task.add_done_callback(_bridge)

    async def _gather_scatter_async(
        self, launches: Sequence[tuple[Any, dict]]
    ) -> list[tuple[Any, Any]]:
        """Async mirror of :meth:`_gather_scatter` (drain-all-then-raise)."""
        rows: list[tuple[str, float]] = []
        first_error: Exception | None = None
        gathered: list[tuple[Any, Any]] = []
        for tag, launch in launches:
            try:
                value, chain_rows = await self._chain_gather_async(launch)
            except TransportError as exc:
                if first_error is None:
                    first_error = exc
                continue
            rows.extend(chain_rows)
            gathered.append((tag, value))
        self._record_parallel_timings(rows)
        if first_error is not None:
            raise first_error
        return gathered

    def _gather_scatter(
        self, launches: Sequence[tuple[Any, dict]]
    ) -> list[tuple[Any, Any]]:
        """Gather a set of concurrently launched chains.

        Every launch is drained (nothing is left dangling on the pool)
        before the first chain failure — if any — re-raises; successes
        come back as ``(tag, value)`` rows in launch order, and the
        per-node wall clock of the whole scatter lands in the timing
        thread-local exactly once per node.
        """
        rows: list[tuple[str, float]] = []
        first_error: Exception | None = None
        gathered: list[tuple[Any, Any]] = []
        for tag, launch in launches:
            try:
                value, chain_rows = self._chain_gather(launch)
            except TransportError as exc:
                if first_error is None:
                    first_error = exc
                continue
            rows.extend(chain_rows)
            gathered.append((tag, value))
        self._record_parallel_timings(rows)
        if first_error is not None:
            raise first_error
        return gathered

    def _chain_write(self, owners: Sequence[str], request: Request) -> Any:
        """Deliver one write to its owner chain (parallel when allowed)."""
        if len(owners) > 1 and self._parallel_writes():
            value, rows = self._chain_gather(
                self._chain_launch(owners, request, is_batch=False)
            )
            self._record_parallel_timings(rows)
            return value
        return self._chain_serial(owners, request, is_batch=False)

    def _chain_serial(self, owners: Sequence[str], payload: Any,
                      is_batch: bool) -> Any:
        """The sequential chain delivery (legacy / nested-pool path).

        The first successful delivery's result is returned.  A
        non-breaker failure of the *primary* propagates (the resilience
        layer above redelivers; per-host idempotency dedup makes that
        safe); replica failures are swallowed and counted.
        """
        call = self._timed_batch if is_batch else self._timed_call
        result: Any = None
        delivered = False
        last: Exception | None = None
        for index, name in enumerate(owners):
            try:
                value = call(name, payload)
            except CircuitOpenError as exc:
                last = exc
                with self._lock:
                    if delivered:
                        self._replica_errors += 1
                    else:
                        self._failovers += 1
                continue
            except TransportError as exc:
                if index == 0:
                    raise
                last = exc
                with self._lock:
                    self._replica_errors += 1
                continue
            if not delivered:
                result = value
                delivered = True
        if not delivered:
            assert last is not None
            raise last
        return result

    def _broadcast(self, request: Request,
                   nodes: Sequence[str] | None = None,
                   skip_broken: bool | None = None,
                   ) -> list[tuple[str, Any]]:
        """Call every target node, returning ``(name, result)`` rows in
        node order.

        A :class:`RemoteError` (application failure) always propagates.
        Link failures propagate too unless ``skip_broken`` — the default
        when replication holds every datum on more than one node, where a
        broken shard's rows exist elsewhere in the gather.
        """
        targets = list(nodes) if nodes is not None else self.node_names()
        if skip_broken is None:
            skip_broken = self._replication() > 1

        def one(name: str) -> tuple[str, Any, float, Exception | None]:
            node = self._nodes[name]
            started = time.perf_counter()
            try:
                result = node.call_request(request)
                return name, result, time.perf_counter() - started, None
            except TransportError as exc:
                return name, None, time.perf_counter() - started, exc

        if (self.config.parallel_fanout and len(targets) > 1
                and not _on_scatter_thread()):
            rows = list(self._scatter_pool().map(one, targets))
        else:
            rows = [one(name) for name in targets]

        with self._lock:
            self._scatters += 1
        gathered: list[tuple[str, Any]] = []
        last_error: Exception | None = None
        for name, result, seconds, error in rows:
            self._record_timing(name, seconds)
            if error is not None:
                if skip_broken and not isinstance(error, RemoteError):
                    with self._lock:
                        self._failovers += 1
                    last_error = error
                    continue
                raise error
            gathered.append((name, result))
        if not gathered and last_error is not None:
            raise last_error
        return gathered

    def _attempt_chain(self, names: Sequence[str], request: Request) -> Any:
        """Read along a replica chain: an open breaker moves to the next
        candidate; application errors propagate immediately."""
        last: Exception | None = None
        for name in names:
            try:
                return self._timed_call(name, request)
            except CircuitOpenError as exc:
                last = exc
                with self._lock:
                    self._failovers += 1
        assert last is not None
        raise last

    def _routed_write(self, key: str | bytes, request: Request) -> Any:
        """Deliver a write to its key's owner chain (see
        :meth:`_chain_write` for the replication/quorum semantics)."""
        ring, _, _ = self._topology()
        return self._chain_write(ring.owners(key, self._replication()),
                                 request)

    def _routed_read(self, key: str | bytes, request: Request) -> Any:
        ring, _, _ = self._topology()
        owners = ring.owners(key, self._replication())
        if len(owners) == 1:
            return self._timed_call(owners[0], request)
        return self._attempt_chain(owners, request)

    def _prev_owner(self, key: str | bytes) -> str | None:
        """The forwarding-table owner, when it differs from the current
        owner and is still reachable."""
        ring, forward, _ = self._topology()
        if forward is None:
            return None
        prev = forward.owner(key)
        if prev == ring.owner(key) or prev not in self._nodes:
            return None
        return prev

    # -- Transport interface ---------------------------------------------------

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        service = request.service
        if service == "admin":
            return self._admin(request)
        if service.startswith("docs/"):
            return self._docs(request)
        if service.startswith("tactic/"):
            return self._tactic(request)
        # Unknown service class: conservative broadcast, last result.
        return self._broadcast_last(request)

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        _, forward, order = self._topology()
        if len(order) == 1 and forward is None:
            name = order[0]
            started = time.perf_counter()
            try:
                return self._nodes[name].call_batch(list(requests))
            finally:
                self._record_timing(name, time.perf_counter() - started)

        responses: list[Response | None] = [None] * len(requests)
        grouped, loose, splits = self._group_slots(requests)
        assign, finish_splits = self._split_merger(responses, splits)

        parallel = self._parallel_writes() and (
            len(grouped) > 1
            or any(len(chain) > 1 for chain in grouped)
        )
        if parallel:
            # Launch every per-chain sub-batch before gathering any:
            # a write frame touching K shards costs one round trip.
            launches = [
                (tags,
                 self._chain_launch(chain, subrequests, is_batch=True))
                for chain, (tags, subrequests) in grouped.items()
            ]
            with self._lock:
                self._scatters += 1
            for tags, answered in self._gather_scatter(launches):
                for tag, response in zip(tags, answered):
                    assign(tag, response)
        else:
            for chain, (tags, subrequests) in grouped.items():
                if len(chain) == 1:
                    answered = self._timed_batch(chain[0], subrequests)
                else:
                    answered = self._chain_serial(chain, subrequests,
                                                  is_batch=True)
                for tag, response in zip(tags, answered):
                    assign(tag, response)
        finish_splits()
        if loose:
            self._dispatch_loose(requests, loose, responses)
        missing = [i for i, r in enumerate(responses) if r is None]
        if missing:
            raise TransportError(
                f"sharded batch lost responses for slots {missing}"
            )
        return responses

    def _group_slots(
        self, requests: Sequence[Request]
    ) -> tuple[dict[tuple[str, ...], tuple[list, list[Request]]],
               list[int], dict[int, int]]:
        """Split a batch frame into per-owner-chain sub-batches.

        Returns ``(grouped, loose, splits)``: ``grouped`` maps each
        owner chain to its ``(tags, subrequests)`` in slot order, where a
        tag is either a plain slot index or, for a bulk-insert piece,
        ``(slot, positions)`` mapping the piece's returned ids back into
        the original document order; ``loose`` lists the slots that need
        the full router; ``splits`` records each split slot's document
        count.  Shared by the sync and async scatter paths so both route
        byte-identically.
        """
        grouped: dict[tuple[str, ...], tuple[list, list[Request]]] = {}
        loose: list[int] = []
        splits: dict[int, int] = {}
        for index, request in enumerate(requests):
            split = self._split_insert_many(request)
            if split is not None:
                # A ``docs insert_many`` slot rides the same scatter as
                # the index writes it travels with: one piece per owner
                # chain, in slot order, instead of a second sequential
                # round trip through the loose path.
                total, pieces = split
                splits[index] = total
                for chain, (positions, sub) in pieces.items():
                    tags, subrequests = grouped.setdefault(
                        chain, ([], [])
                    )
                    tags.append((index, tuple(positions)))
                    subrequests.append(sub)
                continue
            chain = self._chain_route(request)
            if chain is None:
                loose.append(index)
            else:
                tags, subrequests = grouped.setdefault(chain, ([], []))
                tags.append(index)
                subrequests.append(request)
        return grouped, loose, splits

    @staticmethod
    def _split_merger(responses: list[Response | None],
                      splits: dict[int, int]):
        """Build the tag-assignment closure pair for one batch dispatch.

        ``assign(tag, response)`` lands a sub-response either directly in
        its slot or into the id-merge buffer of a split ``insert_many``;
        ``finish()`` folds the merge buffers into their final slot
        responses (first error wins per slot).
        """
        merged_ids = {index: [None] * total
                      for index, total in splits.items()}
        merged_error: dict[int, Response] = {}

        def assign(tag, response: Response) -> None:
            if isinstance(tag, tuple):
                slot, positions = tag
                if not response.ok:
                    merged_error.setdefault(slot, response)
                    return
                for position, doc_id in zip(positions,
                                            response.result or []):
                    merged_ids[slot][position] = doc_id
            else:
                responses[tag] = response

        def finish() -> None:
            for slot, ids in merged_ids.items():
                error = merged_error.get(slot)
                responses[slot] = (
                    error if error is not None else Response(
                        ok=True,
                        result=[doc_id for doc_id in ids
                                if doc_id is not None],
                    )
                )

        return assign, finish

    def _dispatch_loose(self, requests: Sequence[Request],
                        loose: Sequence[int],
                        responses: list[Response | None]) -> None:
        """Route the slots that need the full router, one at a time.

        Read-only slots fan out concurrently (each task degrades to the
        serial router paths on its scatter worker); anything that may
        mutate state — and every slot while a migration's forwarding
        table is active — stays sequential so per-shard write order is
        exactly the frame's slot order.
        """
        _, forward, _ = self._topology()
        concurrent = (
            self._parallel_writes() and len(loose) > 1
            and forward is None
            and not any(self._mutating_slot(requests[i]) for i in loose)
        )
        if not concurrent:
            for index in loose:
                # Base-class semantics: per-slot isolation of everything
                # but link-level failures.
                responses[index] = Transport.call_batch(
                    self, [requests[index]]
                )[0]
            return

        def one(index: int) -> tuple[int, Response | None,
                                     list[tuple[str, float]],
                                     Exception | None]:
            # Timings land in the worker's thread-local; drain them so
            # the caller can max-merge the scatter's wall clock.
            try:
                response = Transport.call_batch(
                    self, [requests[index]]
                )[0]
                return index, response, self.drain_shard_timings(), None
            except TransportError as exc:
                return index, None, self.drain_shard_timings(), exc

        rows: list[tuple[str, float]] = []
        first_error: Exception | None = None
        for index, response, timing_rows, error in \
                self._scatter_pool().map(one, loose):
            rows.extend(timing_rows)
            if error is not None:
                if first_error is None:
                    first_error = error
                continue
            responses[index] = response
        self._record_parallel_timings(rows)
        if first_error is not None:
            raise first_error

    async def call_batch_async(
        self, requests: Sequence[Request]
    ) -> list[Response]:
        """Native async batch scatter: event-loop fan-out, same routing.

        Slot grouping, idem derivation, quorum semantics and merge order
        all reuse the sync path's helpers, so the two paths produce
        byte-identical cloud state; only the concurrency substrate
        differs (loop tasks instead of scatter-pool threads).
        """
        _, forward, order = self._topology()
        if len(order) == 1 and forward is None:
            name = order[0]
            started = time.perf_counter()
            try:
                return await self._nodes[name].call_batch_async(
                    list(requests)
                )
            finally:
                self._record_timing(name,
                                    time.perf_counter() - started)

        responses: list[Response | None] = [None] * len(requests)
        grouped, loose, splits = self._group_slots(requests)
        assign, finish_splits = self._split_merger(responses, splits)
        if grouped:
            # Launch every per-chain sub-batch before gathering any —
            # the same one-round-trip shape as the sync scatter.
            launches = [
                (tags,
                 self._chain_launch_async(chain, subrequests,
                                          is_batch=True))
                for chain, (tags, subrequests) in grouped.items()
            ]
            with self._lock:
                self._scatters += 1
            for tags, answered in await self._gather_scatter_async(
                launches
            ):
                for tag, response in zip(tags, answered):
                    assign(tag, response)
        finish_splits()
        if loose:
            await self._dispatch_loose_async(requests, loose, responses)
        missing = [i for i, r in enumerate(responses) if r is None]
        if missing:
            raise TransportError(
                f"sharded batch lost responses for slots {missing}"
            )
        return responses

    async def _dispatch_loose_async(
        self, requests: Sequence[Request], loose: Sequence[int],
        responses: list[Response | None],
    ) -> None:
        """Async loose-slot dispatch with the sync path's ordering rules.

        Each slot runs the full (blocking) router on a worker thread;
        read-only slots fan out concurrently, mutating or
        forwarding-epoch slots stay strictly sequential.  ``to_thread``
        copies this operation's context, so shard timings land in the
        operation's own sink.
        """
        _, forward, _ = self._topology()
        concurrent_ok = (
            len(loose) > 1 and forward is None
            and not any(self._mutating_slot(requests[i]) for i in loose)
        )
        self._timings()  # materialise the context-shared timing sink
        if not concurrent_ok:
            for index in loose:
                responses[index] = (await asyncio.to_thread(
                    Transport.call_batch, self, [requests[index]]
                ))[0]
            return

        async def one(index: int) -> tuple[int, Response | None,
                                           Exception | None]:
            try:
                answered = await asyncio.to_thread(
                    Transport.call_batch, self, [requests[index]]
                )
                return index, answered[0], None
            except TransportError as exc:
                return index, None, exc

        first_error: Exception | None = None
        for index, response, error in await asyncio.gather(
            *(one(index) for index in loose)
        ):
            if error is not None:
                if first_error is None:
                    first_error = error
                continue
            responses[index] = response
        if first_error is not None:
            raise first_error

    @staticmethod
    def _mutating_slot(request: Request) -> bool:
        """Conservatively, whether a loose slot may mutate state."""
        service, method = request.service, request.method
        if service.startswith("docs/"):
            return method not in (
                "get", "get_many", "get_proven", "get_many_proven",
                "count", "all_ids", "find_plain", "find_text",
            )
        if service.startswith("tactic/"):
            return (method in MUTATING_TACTIC_METHODS
                    or method == "setup")
        return True

    def _chain_route(self, request: Request) -> tuple[str, ...] | None:
        """The owner chain for batch slots that are pure chain
        deliveries; ``None`` sends the slot through the full router."""
        ring, forward, _ = self._topology()
        replication = self._replication()
        service, method, kwargs = (request.service, request.method,
                                   request.kwargs)
        if service.startswith("docs/"):
            if method == "insert" and forward is None:
                doc_id = (kwargs.get("document") or {}).get("_id")
                if doc_id:
                    return tuple(ring.owners(doc_id, replication))
                return None
            if method in ("replace", "delete") and forward is None:
                key = (kwargs.get("document") or {}).get("_id") \
                    if method == "replace" else kwargs.get("doc_id")
                if key:
                    return tuple(ring.owners(key, replication))
                return None
            return None
        if service.startswith("tactic/"):
            tactic = _tactic_of(service)
            if method == "setup" or method not in MUTATING_TACTIC_METHODS:
                return None
            if tactic in DOC_KEYED and "doc_id" in kwargs:
                return tuple(ring.owners(kwargs["doc_id"], replication))
            if tactic in ADDRESS_KEYED and "address" in kwargs:
                return tuple(ring.owners(
                    self._address_key(kwargs["address"]), replication
                ))
            if tactic in TAG_KEYED and "tag" in kwargs:
                return tuple(ring.owners(
                    self._address_key(kwargs["tag"]), replication
                ))
            if tactic in PINNED or tactic not in (
                DOC_KEYED | ADDRESS_KEYED | TAG_KEYED
            ):
                return tuple(self._pin_nodes(service))
        return None

    def _split_insert_many(
        self, request: Request
    ) -> tuple[int, dict[tuple[str, ...],
                         tuple[list[int], Request]]] | None:
        """Per-chain pieces of a ``docs insert_many`` batch slot, or
        ``None`` when the slot must go through the full router instead
        (forwarding active, empty batch, or a document without an id).

        Each piece carries the positions its documents occupy in the
        original batch, so the per-chain id lists can be merged back
        into one response in document order.  The idem derivation
        matches :meth:`_docs_insert_many` exactly: replays of the same
        logical bulk insert dedup identically on either path.
        """
        if (not request.service.startswith("docs/")
                or request.method != "insert_many"):
            return None
        ring, forward, _ = self._topology()
        if forward is not None:
            return None
        documents = list(request.kwargs.get("documents") or [])
        if not documents:
            return None
        replication = self._replication()
        groups: dict[tuple[str, ...], tuple[list[int], list[dict]]] = {}
        for position, document in enumerate(documents):
            doc_id = (document or {}).get("_id")
            if not doc_id:
                return None
            chain = tuple(ring.owners(doc_id, replication))
            positions, docs = groups.setdefault(chain, ([], []))
            positions.append(position)
            docs.append(document)
        pieces: dict[tuple[str, ...], tuple[list[int], Request]] = {}
        for chain in sorted(groups):
            positions, docs = groups[chain]
            idem = (f"{request.idem}.{'+'.join(chain)}"
                    if request.idem else "")
            pieces[chain] = (positions, Request(
                request.service, "insert_many",
                {**request.kwargs, "documents": docs}, idem=idem,
            ))
        return len(documents), pieces

    # -- admin -----------------------------------------------------------------

    def _admin(self, request: Request) -> Any:
        method = request.method
        if method == "list_services":
            names: set[str] = set()
            for _, result in self._broadcast(request, skip_broken=False):
                names.update(result or [])
            return sorted(names)
        if method in ("provision_application", "provision_tactic",
                      "enable_integrity"):
            # enable_integrity is provision-logged too: a joining node
            # must build its trees and register its integrity service
            # before migrated entries start landing on it.
            self._log_provision(request)
            if method == "provision_application":
                application = request.kwargs.get("application")
                with self._lock:
                    if application and (application
                                        not in self._applications):
                        self._applications.append(application)
            elif method == "provision_tactic":
                from repro.spi.context import service_name

                kwargs = request.kwargs
                with self._lock:
                    self._tactic_services[service_name(
                        kwargs["application"], kwargs["field"],
                        kwargs["tactic"],
                    )] = kwargs["tactic"]
        results = self._broadcast(request, skip_broken=False)
        return results[-1][1]

    def _log_provision(self, request: Request) -> None:
        bare = Request(request.service, request.method,
                       dict(request.kwargs))
        with self._lock:
            self._provision_log.append(bare)

    def _broadcast_last(self, request: Request) -> Any:
        results = self._broadcast(request, skip_broken=False)
        for _, result in reversed(results):
            if result is not None:
                return result
        return results[-1][1]

    # -- document store --------------------------------------------------------

    def _docs(self, request: Request) -> Any:
        _, forward, order = self._topology()
        method, kwargs = request.method, request.kwargs
        if len(order) == 1 and forward is None:
            return self._timed_call(order[0], request)
        if method == "insert":
            return self._routed_write(self._doc_key(kwargs), request)
        if method == "insert_many":
            return self._docs_insert_many(request)
        if method in ("get", "get_proven"):
            return self._docs_get(request)
        if method in ("get_many", "get_many_proven"):
            return self._docs_get_many(request)
        if method == "replace":
            return self._docs_replace(request)
        if method == "delete":
            return self._docs_delete(request)
        if method == "count":
            return self._docs_count(request)
        if method in ("all_ids", "find_plain"):
            merged: list[str] = []
            seen: set[str] = set()
            for _, part in self._broadcast(request):
                for doc_id in part or []:
                    if doc_id not in seen:
                        seen.add(doc_id)
                        merged.append(doc_id)
            limit = kwargs.get("limit")
            if method == "find_plain" and limit is not None:
                return merged[:limit]
            return merged
        if method == "find_text":
            return self._docs_find_text(request)
        return self._broadcast_last(request)

    @staticmethod
    def _doc_key(kwargs: dict[str, Any]) -> str:
        document = kwargs.get("document") or {}
        doc_id = document.get("_id")
        if not doc_id:
            raise TransportError(
                "sharded document writes require an explicit _id"
            )
        return doc_id

    def _docs_insert_many(self, request: Request) -> list[str]:
        documents = list(request.kwargs.get("documents") or [])
        if not documents:
            return []
        ring, _, _ = self._topology()
        replication = self._replication()
        groups: dict[tuple[str, ...], tuple[list[int], list[dict]]] = {}
        for index, document in enumerate(documents):
            doc_id = document.get("_id")
            if not doc_id:
                raise TransportError(
                    "sharded document writes require an explicit _id"
                )
            chain = tuple(ring.owners(doc_id, replication))
            indices, docs = groups.setdefault(chain, ([], []))
            indices.append(index)
            docs.append(document)
        ids: list[str | None] = [None] * len(documents)
        subs: list[tuple[list[int], tuple[str, ...], Request]] = []
        for chain in sorted(groups):
            indices, docs = groups[chain]
            # The derived key is deterministic across retries of the
            # same logical insert_many, so the per-host dedup window
            # still applies at-most-once per sub-batch (and per chain
            # member — two chains sharing a replica must not collide).
            idem = (f"{request.idem}.{'+'.join(chain)}"
                    if request.idem else "")
            subs.append((indices, chain,
                         Request(request.service, "insert_many",
                                 {**request.kwargs, "documents": docs},
                                 idem=idem)))
        if self._parallel_writes() and (
            len(subs) > 1 or any(len(c) > 1 for _, c, _ in subs)
        ):
            launches = [
                (indices, self._chain_launch(chain, sub, is_batch=False))
                for indices, chain, sub in subs
            ]
            for indices, returned in self._gather_scatter(launches):
                for slot, doc_id in zip(indices, returned):
                    ids[slot] = doc_id
        else:
            for indices, chain, sub in subs:
                returned = (self._timed_call(chain[0], sub)
                            if len(chain) == 1
                            else self._chain_serial(chain, sub,
                                                    is_batch=False))
                for slot, doc_id in zip(indices, returned):
                    ids[slot] = doc_id
        return [doc_id for doc_id in ids if doc_id is not None]

    def _docs_get(self, request: Request) -> Any:
        doc_id = request.kwargs["doc_id"]
        try:
            return self._routed_read(doc_id, request)
        except RemoteError as exc:
            prev = self._prev_owner(doc_id)
            if prev is None or exc.remote_type != "DocumentNotFound":
                raise
            return self._timed_call(prev, request)

    def _docs_replace(self, request: Request) -> Any:
        doc_id = self._doc_key(request.kwargs)
        try:
            return self._routed_write(doc_id, request)
        except RemoteError as exc:
            prev = self._prev_owner(doc_id)
            if prev is None or exc.remote_type != "DocumentNotFound":
                raise
            return self._timed_call(prev, request)

    def _docs_delete(self, request: Request) -> bool:
        doc_id = request.kwargs["doc_id"]
        existed = bool(self._routed_write(doc_id, request))
        if not existed:
            prev = self._prev_owner(doc_id)
            if prev is not None:
                existed = bool(self._timed_call(prev, request))
        return existed

    def _docs_get_many(self, request: Request) -> list[dict]:
        requested = list(request.kwargs.get("doc_ids") or [])
        ring, forward, _ = self._topology()
        replication = self._replication()
        found: dict[str, dict] = {}
        missing: list[str] = []
        seen: set[str] = set()
        for doc_id in requested:
            if doc_id not in seen:
                seen.add(doc_id)
                missing.append(doc_id)
        for attempt in range(replication):
            if not missing:
                break
            groups: dict[str, list[str]] = {}
            for doc_id in missing:
                owners = ring.owners(doc_id, replication)
                if attempt < len(owners):
                    groups.setdefault(owners[attempt], []).append(doc_id)
            deferred: list[str] = []
            for name in sorted(groups):
                ids = groups[name]
                sub = Request(request.service, request.method,
                              {**request.kwargs, "doc_ids": ids})
                try:
                    stored = self._timed_call(name, sub)
                except TransportError:
                    if attempt + 1 < replication:
                        with self._lock:
                            self._failovers += 1
                        deferred.extend(ids)
                        continue
                    raise
                for item in stored:
                    found[item["_id"]] = item
                deferred.extend(i for i in ids if i not in found)
            missing = deferred
        if missing and forward is not None:
            groups = {}
            for doc_id in missing:
                prev = self._prev_owner(doc_id)
                if prev is not None:
                    groups.setdefault(prev, []).append(doc_id)
            for name in sorted(groups):
                sub = Request(request.service, request.method,
                              {**request.kwargs,
                               "doc_ids": groups[name]})
                for item in self._timed_call(name, sub):
                    found[item["_id"]] = item
        return [found[i] for i in requested if i in found]

    def _docs_count(self, request: Request) -> int:
        if self._replication() == 1:
            return sum(
                part or 0 for _, part in self._broadcast(request)
            )
        # Replicated rows would double-count; gather ids and dedupe.
        query = request.kwargs.get("query")
        if query:
            sub = Request(request.service, "find_plain",
                          {"query": query})
        else:
            sub = Request(request.service, "all_ids", {})
        ids: set[str] = set()
        for _, part in self._broadcast(sub):
            ids.update(part or [])
        return len(ids)

    def _docs_find_text(self, request: Request) -> list[list]:
        limit = request.kwargs.get("limit", 10)
        best: dict[str, float] = {}
        for _, part in self._broadcast(request):
            for doc_id, score in part or []:
                if doc_id not in best or score > best[doc_id]:
                    best[doc_id] = score
        ranked = sorted(best.items(), key=lambda hit: (-hit[1], hit[0]))
        return [[doc_id, score] for doc_id, score in ranked[:limit]]

    # -- tactic services -------------------------------------------------------

    @staticmethod
    def _address_key(value: Any) -> str | bytes:
        if isinstance(value, (str, bytes)):
            return value
        return repr(value)

    def _pin_nodes(self, service: str) -> list[str]:
        with self._lock:
            pins = self._pins.get(service)
            if pins is None:
                pins = self._ring.owners(service, self._replication())
                self._pins[service] = pins
            return list(pins)

    def _tactic(self, request: Request) -> Any:
        service, method, kwargs = (request.service, request.method,
                                   request.kwargs)
        tactic = _tactic_of(service)
        if method == "setup":
            self._log_provision(request)
            results = self._broadcast(request, skip_broken=False)
            return results[-1][1]
        _, forward, order = self._topology()
        if len(order) == 1 and forward is None:
            return self._timed_call(order[0], request)

        if tactic in DOC_KEYED:
            return self._doc_keyed(tactic, request)
        if tactic in ADDRESS_KEYED:
            return self._address_keyed(tactic, request)
        if tactic in TAG_KEYED:
            return self._tag_keyed(request)
        return self._pinned(service, request)

    def _doc_keyed(self, tactic: str, request: Request) -> Any:
        method, kwargs = request.method, request.kwargs
        if "doc_id" in kwargs:
            if method == "retrieve":
                result = self._routed_read(kwargs["doc_id"], request)
                if result is None:
                    prev = self._prev_owner(kwargs["doc_id"])
                    if prev is not None:
                        result = self._timed_call(prev, request)
                return result
            if method in MUTATING_TACTIC_METHODS:
                return self._routed_write(kwargs["doc_id"], request)
        if method in ("eq_query", "range_query"):
            return self._merge_concat(self._broadcast(request))
        if method == "ordered_range" and tactic in ORDERED:
            return self._ordered_range(tactic, request)
        if method == "aggregate" and tactic in AGGREGATE:
            return self._aggregate(request)
        return self._broadcast_last(request)

    def _address_keyed(self, tactic: str, request: Request) -> Any:
        method, kwargs = request.method, request.kwargs
        if method in MUTATING_TACTIC_METHODS and "address" in kwargs:
            return self._routed_write(
                self._address_key(kwargs["address"]), request
            )
        if method == "eq_query":
            results = self._broadcast(request)
            if tactic == "mitra":
                # Address slots align across shards: the owning shard
                # answers its slot, the rest return None.
                merged: list[Any] = []
                for _, part in results:
                    part = part or []
                    while len(merged) < len(part):
                        merged.append(None)
                    for index, payload in enumerate(part):
                        if merged[index] is None:
                            merged[index] = payload
                return merged
            return self._merge_concat(results)
        return self._broadcast_last(request)

    def _tag_keyed(self, request: Request) -> Any:
        method, kwargs = request.method, request.kwargs
        if method in MUTATING_TACTIC_METHODS and "tag" in kwargs:
            return self._routed_write(
                self._address_key(kwargs["tag"]), request
            )
        if method == "eq_query":
            # Node order puts older nodes first, so entries still on a
            # migration source precede entries written to the new owner:
            # the gateway's tombstone scan sees causal order.
            merged: list[Any] = []
            seen: set[Any] = set()
            for _, part in self._broadcast(request):
                for entry in part or []:
                    key = _freeze(entry)
                    if key not in seen:
                        seen.add(key)
                        merged.append(entry)
            return merged
        return self._broadcast_last(request)

    def _pinned(self, service: str, request: Request) -> Any:
        pins = self._pin_nodes(service)
        if request.method in MUTATING_TACTIC_METHODS:
            return self._chain_write(pins, request)
        return self._attempt_chain(pins, request)

    # -- scatter merges --------------------------------------------------------

    def _merge_concat(self, results: list[tuple[str, Any]]) -> list:
        """Union-merge of per-shard id/entry lists.

        Pure-string results (DET/blind-index/OPE/ORE id sets, Sophos
        chains) come back sorted — the answer a single node holding all
        entries would give; mixed payloads keep node-order concat.
        """
        merged: list[Any] = []
        seen: set[Any] = set()
        all_str = True
        for _, part in results:
            for item in part or []:
                key = _freeze(item)
                if key in seen:
                    continue
                seen.add(key)
                merged.append(item)
                if not isinstance(item, str):
                    all_str = False
        if all_str:
            return sorted(merged)
        return merged

    def _ordered_range(self, tactic: str, request: Request) -> list[str]:
        kwargs = request.kwargs
        limit = kwargs.get("limit")
        descending = bool(kwargs.get("descending", False))
        keyed_kwargs: dict[str, Any] = {
            "low": kwargs.get("low"),
            "high": kwargs.get("high"),
            "descending": descending,
        }
        if limit is not None:
            # Each shard returns its own first ``limit`` in direction;
            # the global answer is within the union of those prefixes.
            keyed_kwargs["limit"] = limit
        keyed = Request(request.service, "ordered_range_keyed",
                        keyed_kwargs)
        pairs: list[tuple[Any, str]] = []
        for _, part in self._broadcast(keyed):
            for key, doc_id in part or []:
                pairs.append((key, doc_id))
        if tactic == "ore":
            from repro.crypto.ore import OreCiphertext, compare

            def order(a: tuple[Any, str], b: tuple[Any, str]) -> int:
                verdict = compare(OreCiphertext.from_bytes(a[0]),
                                  OreCiphertext.from_bytes(b[0]))
                if verdict:
                    return verdict
                return (a[1] > b[1]) - (a[1] < b[1])

            pairs.sort(key=functools.cmp_to_key(order))
        else:
            pairs.sort(key=lambda pair: (pair[0], pair[1]))
        if descending:
            pairs.reverse()
        ids: list[str] = []
        seen: set[str] = set()
        for _, doc_id in pairs:
            if doc_id not in seen:
                seen.add(doc_id)
                ids.append(doc_id)
        if limit is not None:
            return ids[:limit]
        return ids

    def _aggregate(self, request: Request) -> Any:
        service, kwargs = request.service, request.kwargs
        doc_ids = kwargs.get("doc_ids")
        ring, _, _ = self._topology()
        replication = self._replication()
        parts: list[Any] = []
        if doc_ids is None:
            for _, part in self._broadcast(request):
                parts.append(part)
        else:
            remaining = list(dict.fromkeys(doc_ids))
            for attempt in range(replication):
                if not remaining:
                    break
                groups: dict[str, list[str]] = {}
                for doc_id in remaining:
                    owners = ring.owners(doc_id, replication)
                    if attempt < len(owners):
                        groups.setdefault(owners[attempt],
                                          []).append(doc_id)
                deferred: list[str] = []
                for name in sorted(groups):
                    ids = groups[name]
                    sub = Request(service, request.method,
                                  {**kwargs, "doc_ids": ids})
                    try:
                        parts.append(self._timed_call(name, sub))
                    except CircuitOpenError:
                        if attempt + 1 < replication:
                            with self._lock:
                                self._failovers += 1
                            deferred.extend(ids)
                            continue
                        raise
                remaining = deferred
        live = [part for part in parts
                if part and part.get("count", 0) > 0]
        if not live:
            return parts[0] if parts else None
        if len(live) == 1:
            return live[0]
        combine = Request(service, "combine", {"parts": live})
        ring, _, order = self._topology()
        return self._attempt_chain(order, combine)
