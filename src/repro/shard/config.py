"""Sharding configuration.

Kept dependency-free (dataclasses only) so
:class:`~repro.net.batch.PipelineConfig` can reference it without an
import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded untrusted zone.

    The all-defaults config with a 1-node ring behaves exactly like the
    unsharded deployment (the equivalence tests enforce it).
    """

    #: Virtual nodes per physical node on the hash ring.
    vnodes: int = 64
    #: Seed of the ring's hash function; part of the shared ring spec.
    seed: int = 0
    #: Copies of every routed write (1 = no replication).  Reads fail
    #: over to replicas when the owner's circuit is open.
    replication: int = 1
    #: Scatter broadcasts and write fan-outs run on a thread pool when
    #: True; False keeps every fan-out sequential (the comparison
    #: baseline and the deterministic-ordering debug mode).
    parallel_fanout: bool = True
    #: Upper bound on concurrent scatter workers.
    fanout_workers: int = 8
    #: Replica acks required before a replicated write returns.
    #:
    #: * ``0`` (the default) keeps the legacy synchronous semantics:
    #:   every replica delivery completes before the write returns, and
    #:   the write succeeds if at least the best-placed delivery did
    #:   (replica failures are swallowed and counted).
    #: * ``1..replication`` acks after that many replicas confirmed; the
    #:   remainder completes asynchronously with breaker-aware bounded
    #:   retries (:meth:`~repro.shard.router.ShardedTransport.drain_async_writes`
    #:   waits them out).  Fewer than the requested acks is a write
    #:   failure — the resilience layer above redelivers, and the
    #:   idempotency keys keep the redelivery at-most-once per host.
    write_quorum: int = 0
    #: Bounded retries for a post-ack (asynchronous) replica delivery
    #: that hit a link failure or an open breaker.
    async_write_retries: int = 4
    #: Base backoff between asynchronous replica retries (doubles per
    #: attempt).
    async_write_backoff_s: float = 0.005
    #: Documents / index entries moved per chunk during resharding.
    rebalance_chunk: int = 64
