"""Sharding configuration.

Kept dependency-free (dataclasses only) so
:class:`~repro.net.batch.PipelineConfig` can reference it without an
import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded untrusted zone.

    The all-defaults config with a 1-node ring behaves exactly like the
    unsharded deployment (the equivalence tests enforce it).
    """

    #: Virtual nodes per physical node on the hash ring.
    vnodes: int = 64
    #: Seed of the ring's hash function; part of the shared ring spec.
    seed: int = 0
    #: Copies of every routed write (1 = no replication).  Reads fail
    #: over to replicas when the owner's circuit is open.
    replication: int = 1
    #: Scatter broadcasts run on a thread pool when True.
    parallel_fanout: bool = True
    #: Upper bound on concurrent scatter workers.
    fanout_workers: int = 8
    #: Documents / index entries moved per chunk during resharding.
    rebalance_chunk: int = 64
