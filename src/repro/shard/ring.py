"""Consistent hash ring with virtual nodes.

Every physical node contributes ``vnodes`` points on a 64-bit ring; a
shard key is owned by the first node point clockwise of the key's own
point.  Adding a node therefore moves only the keys falling between its
new points and their predecessors (~1/N of the keyspace), which is what
makes online resharding incremental.

The hash is keyed blake2b with a deterministic, config-supplied seed, so
two parties holding the same ``(nodes, vnodes, seed)`` spec — e.g. the
gateway-side router and a cloud-side tactic evaluating ``shard_export``
ownership — compute identical placements.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Any, Iterable


def _salt(seed: int) -> bytes:
    # blake2b salts are at most 16 bytes; pad deterministic seed bytes.
    return seed.to_bytes(8, "big").rjust(16, b"\x00")


class HashRing:
    """Maps shard keys (str | bytes) to node names."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64,
                 seed: int = 0):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.seed = seed
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------------

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.vnodes):
            point = self._point(f"{node}#{replica}".encode())
            bisect.insort(self._points, (point, node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(p, n) for p, n in self._points if n != node]

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    # -- lookup --------------------------------------------------------------

    def _point(self, data: bytes) -> int:
        digest = blake2b(data, digest_size=8, salt=_salt(self.seed))
        return int.from_bytes(digest.digest(), "big")

    def owner(self, key: str | bytes) -> str:
        """The node owning ``key``."""
        return self.owners(key, 1)[0]

    def owners(self, key: str | bytes, count: int) -> list[str]:
        """The first ``count`` *distinct* nodes clockwise of ``key``.

        Used for replication: owners[0] is the primary, the rest are
        replicas.  ``count`` is clamped to the ring size.
        """
        if not self._points:
            raise ValueError("hash ring has no nodes")
        if isinstance(key, str):
            key = key.encode()
        start = bisect.bisect_right(self._points, (self._point(key),
                                                   "\x7f" * 8))
        found: list[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in found:
                found.append(node)
                if len(found) >= min(count, len(self._nodes)):
                    break
        return found

    # -- serialisable spec ---------------------------------------------------

    def spec(self, self_node: str | None = None) -> dict[str, Any]:
        """A wire-shippable description of this ring.

        ``self_node`` marks which member the receiving side *is* — a
        cloud tactic evaluating export ownership needs to know its own
        name within the ring.
        """
        spec: dict[str, Any] = {
            "nodes": self.nodes(),
            "vnodes": self.vnodes,
            "seed": self.seed,
        }
        if self_node is not None:
            spec["self"] = self_node
        return spec

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "HashRing":
        return cls(spec["nodes"], vnodes=spec["vnodes"], seed=spec["seed"])


def spec_ring(spec: dict[str, Any]) -> tuple[HashRing, str | None]:
    """Rebuild ``(ring, origin_node)`` from a wire spec."""
    return HashRing.from_spec(spec), spec.get("self")
