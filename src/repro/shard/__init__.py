"""Sharded untrusted zone: hash-ring routing, scatter/gather, resharding.

The paper's deployment view (Fig. 3) draws the untrusted zone as several
cloud providers; this package partitions the encrypted document store and
every secure index across N :class:`~repro.cloud.server.CloudZone` nodes
behind the standard :class:`~repro.net.transport.Transport` interface, so
the gateway (and every tactic protocol) stays oblivious to the topology.

* :mod:`repro.shard.ring` — consistent hash ring with virtual nodes.
* :mod:`repro.shard.router` — :class:`ShardedTransport`: key-routes
  single-key operations, scatters index queries, merges per tactic.
* :mod:`repro.shard.rebalance` — :class:`Resharder`: online node
  join/leave streaming documents and secure-index entries in chunks
  behind a forwarding table.
"""

from repro.shard.config import ShardConfig
from repro.shard.rebalance import MigrationReport, Resharder
from repro.shard.ring import HashRing
from repro.shard.router import ShardedTransport

__all__ = [
    "HashRing",
    "MigrationReport",
    "Resharder",
    "ShardConfig",
    "ShardedTransport",
]
