"""Online resharding: node join/leave with live forwarding.

The protocol keeps reads correct at every instant of a migration:

1. ``begin_join``/``begin_leave`` installs the *previous* ring as the
   router's forwarding table and (for a join) replays the provisioning
   log so the new node hosts every service before any key moves.
2. Documents stream source -> target in chunks of
   ``ShardConfig.rebalance_chunk``: each chunk is **imported before it
   is deleted**, so a concurrent read finds the document on the new
   owner (after import) or through the forwarding table on the old owner
   (before it).  ``count`` may transiently over-count the in-flight
   chunk — the documented cost of never under-serving a read.
3. Secure-index entries move through the tactic shard SPI:
   ``shard_export(spec)`` returns the entries the source no longer owns
   under the new ring (non-destructively, first element = shard key),
   ``shard_import(entries)`` merges them idempotently at the target, and
   only then ``shard_evict(spec)`` drops them at the source.  Search
   correctness tolerates the transient duplicates by construction: every
   scatter merge dedupes.
4. ``finish_migration``/``finish_leave`` drops the forwarding table and
   bumps the topology epoch again.

Pinned services (BIEX) do not move on a join; on a leave they relocate
whole via the generic ``shard_dump``/``shard_load``/``shard_drop``
namespace protocol.  Online resharding requires ``replication == 1`` —
with replicas, chunked ownership moves would need a consensus layer this
middleware deliberately does not grow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import IntegrityError, RemoteError, TransportError
from repro.net.transport import Transport
from repro.shard.ring import HashRing
from repro.shard.router import (
    ADDRESS_KEYED,
    DOC_KEYED,
    TAG_KEYED,
    ShardedTransport,
)


@dataclass
class MigrationReport:
    """What one node join/leave moved, for logs and benchmarks."""

    node: str
    documents_moved: int = 0
    index_entries_moved: dict[str, int] = field(default_factory=dict)
    services_replayed: int = 0
    seconds: float = 0.0
    #: True when the post-migration cluster-digest invariance check ran
    #: (it runs only when integrity is enabled on the zones).
    integrity_verified: bool = False

    @property
    def index_entries_total(self) -> int:
        return sum(self.index_entries_moved.values())


def _chunks(items: list, size: int) -> Iterable[list]:
    for offset in range(0, len(items), size):
        yield items[offset:offset + size]


class Resharder:
    """Drives online node join/leave against a :class:`ShardedTransport`."""

    def __init__(self, router: ShardedTransport,
                 chunk_size: int | None = None):
        self._router = router
        self._chunk = chunk_size or router.config.rebalance_chunk
        if self._chunk < 1:
            raise TransportError("rebalance chunk must be >= 1")

    def _require_unreplicated(self) -> None:
        if self._router.config.replication != 1:
            raise TransportError(
                "online resharding requires replication=1"
            )

    # -- join ------------------------------------------------------------------

    def add_node(self, name: str, transport: Transport
                 ) -> MigrationReport:
        """Admit ``name`` and stream its keys over, reads staying live."""
        self._require_unreplicated()
        # Durability barrier: no write may still be in flight from a
        # quorum ack while its keys migrate out from under it.
        self._router.drain_async_writes()
        report = MigrationReport(node=name)
        started = time.perf_counter()
        before = self._cluster_digests()
        sources = self._router.node_names()
        self._router.begin_join(name, transport)
        report.services_replayed = len(self._router.provision_log)
        try:
            ring = HashRing.from_spec(self._router.ring_spec())
            for source in sources:
                report.documents_moved += self._move_documents(
                    source, only_to=name
                )
            for service, tactic in self._router.tactic_services().items():
                if not _migratable(tactic):
                    continue  # pinned services stay put on a join
                moved = 0
                for source in sources:
                    moved += self._move_index_entries(service, source,
                                                      ring)
                report.index_entries_moved[service] = moved
        finally:
            self._router.finish_migration()
        report.integrity_verified = self._check_digests(before, name)
        report.seconds = time.perf_counter() - started
        return report

    # -- leave -----------------------------------------------------------------

    def remove_node(self, name: str) -> MigrationReport:
        """Drain ``name`` completely, then drop it from the topology."""
        self._require_unreplicated()
        self._router.drain_async_writes()
        report = MigrationReport(node=name)
        started = time.perf_counter()
        before = self._cluster_digests()
        self._router.begin_leave(name)
        try:
            ring = HashRing.from_spec(self._router.ring_spec())
            self._move_pins(name, ring)
            report.documents_moved += self._move_documents(name)
            for service, tactic in self._router.tactic_services().items():
                if not _migratable(tactic):
                    continue  # pinned services moved with their pin
                report.index_entries_moved[service] = (
                    self._move_index_entries(service, name, ring)
                )
        finally:
            self._router.finish_leave(name)
        report.integrity_verified = self._check_digests(before, name)
        report.seconds = time.perf_counter() - started
        return report

    def _move_pins(self, departing: str, ring: HashRing) -> None:
        for service, pins in self._router.pins().items():
            if departing not in pins:
                continue
            target = ring.owner(service)
            if target != departing:
                source = self._router.node_transport(departing)
                dump = source.call(service, "shard_dump")
                self._router.node_transport(target).call(
                    service, "shard_load", dump=dump
                )
                source.call(service, "shard_drop")
            self._router.set_pins(
                service,
                [target if pin == departing else pin for pin in pins],
            )

    # -- integrity invariance --------------------------------------------------

    def _cluster_digests(self) -> dict[str, dict[str, int]] | None:
        """Per-application additive cluster digests, or None when the
        zones do not run integrity tracking.

        The additive (AdHash-style) digest of a tree is the sum of its
        shard digests, and relocating leaves between shards preserves
        that sum — so at ``replication == 1`` a migration must leave
        every cluster digest exactly where it was.
        """
        from repro.integrity.merkle import merge_digests

        digests: dict[str, dict[str, int]] = {}
        for application in self._router.applications:
            try:
                labeled = self._router.call_labeled(
                    f"integrity/{application}", "report"
                )
            except (RemoteError, TransportError):
                continue  # integrity not enabled on this application
            per_tree: dict[str, list[int]] = {}
            for state in labeled.values():
                for tree, entry in state["trees"].items():
                    per_tree.setdefault(tree, []).append(
                        int(str(entry["digest"]), 16)
                    )
            digests[application] = {
                tree: merged
                for tree, parts in per_tree.items()
                if (merged := merge_digests(parts)) != 0
            }
        return digests or None

    def _check_digests(self, before: dict | None, node: str) -> bool:
        if before is None:
            return False
        after = self._cluster_digests() or {}
        if after != before:
            raise IntegrityError(
                f"resharding around node {node!r} changed the cluster "
                f"digest: expected {before}, observed {after} — "
                f"entries were lost or duplicated during the migration"
            )
        return True

    # -- the streaming moves ---------------------------------------------------

    def _move_documents(self, source: str,
                        only_to: str | None = None) -> int:
        """Import-then-delete document chunks off ``source``.

        ``only_to`` restricts the move to keys now owned by one node (a
        join moves keys only toward the joiner); a drain (leave) moves
        every key to its new owner.
        """
        router = self._router
        ring = HashRing.from_spec(router.ring_spec())
        transport = router.node_transport(source)
        moved = 0
        for application in router.applications:
            service = f"docs/{application}"
            doc_ids = transport.call(service, "all_ids")
            staying: dict[str, list[str]] = {}
            for doc_id in doc_ids:
                owner = ring.owner(doc_id)
                if owner == source:
                    continue
                if only_to is not None and owner != only_to:
                    continue
                staying.setdefault(owner, []).append(doc_id)
            for target, ids in sorted(staying.items()):
                receiver = router.node_transport(target)
                for chunk in _chunks(ids, self._chunk):
                    stored = transport.call(service, "get_many",
                                            doc_ids=chunk)
                    self._import_documents(receiver, service, stored)
                    for doc_id in chunk:
                        transport.call(service, "delete", doc_id=doc_id)
                    moved += len(stored)
        return moved

    @staticmethod
    def _import_documents(receiver: Transport, service: str,
                          stored: list[dict[str, Any]]) -> None:
        try:
            receiver.call(service, "insert_many", documents=stored)
        except RemoteError:
            # A retried chunk may be half-present: fall back to per-doc
            # upsert so the move stays idempotent.
            for document in stored:
                try:
                    receiver.call(service, "insert", document=document)
                except RemoteError:
                    receiver.call(service, "replace", document=document)

    def _move_index_entries(self, service: str, source: str,
                            ring: HashRing) -> int:
        router = self._router
        transport = router.node_transport(source)
        spec = ring.spec(self_node=source)
        exported = transport.call(service, "shard_export", spec=spec)
        if not exported:
            return 0
        groups: dict[str, list[Any]] = {}
        for entry in exported:
            key = entry[0]
            groups.setdefault(ring.owner(key), []).append(entry)
        for target, entries in sorted(groups.items()):
            receiver = router.node_transport(target)
            for chunk in _chunks(entries, self._chunk):
                receiver.call(service, "shard_import", entries=chunk)
        transport.call(service, "shard_evict", spec=spec)
        return len(exported)


def _migratable(tactic: str) -> bool:
    return tactic in (DOC_KEYED | ADDRESS_KEYED | TAG_KEYED)
