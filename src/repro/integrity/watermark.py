"""Gateway-held freshness ledger: rollback detection via watermarks.

Authenticated encryption and Merkle proofs alone cannot catch a
*rollback*: a malicious provider that serves a complete, internally
consistent snapshot from last week passes every proof check.  What
catches it is state the attacker cannot roll back — this ledger, held
in the trusted zone.

The cloud-side :class:`repro.integrity.tracker.IntegrityTracker` stamps
every state report with a monotonic mutation sequence seeded from the
WAL ``last_snapshot_seq`` watermark (PR 2/4 machinery), so a replayed
old-but-valid snapshot arrives with a *lower* sequence than the ledger
remembers and is classified stale rather than merely unverifiable.

Trust model: **trust on write, verify on read**.  The gateway is the
only writer, so a report that advances the sequence with a new root is
accepted (it is the gateway's own write taking effect); a report or
proof envelope that regresses the sequence, or re-presents a retired
root, is a rollback (:class:`repro.errors.StaleStateError`); one that
contradicts the ledger at the same sequence is tampering
(:class:`repro.errors.IntegrityError`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import IntegrityError, StaleStateError
from repro.integrity.merkle import digest_root, merge_digests


@dataclass(frozen=True)
class LedgerEntry:
    """Latest accepted state of one (shard label, tree) pair."""

    seq: int
    root: str
    digest: int


class FreshnessLedger:
    """Per-shard, per-tree watermarks plus a bounded retired-root memory.

    ``history`` bounds how many superseded roots are remembered per
    (label, tree): a replayed envelope carrying any remembered old root
    is reported as *stale* (rollback) instead of *unknown* (tamper),
    which is the signal operators need to tell a replay attack from
    random corruption.
    """

    def __init__(self, history: int = 64):
        self._history_limit = max(0, int(history))
        self._latest: dict[tuple[str, str], LedgerEntry] = {}
        self._retired: dict[tuple[str, str], OrderedDict[str, int]] = {}
        self._lock = threading.Lock()

    # -- ingest -------------------------------------------------------------

    def accept_report(self, label: str, report: dict) -> None:
        """Fold one shard's state report into the ledger.

        ``report`` is the :meth:`IntegrityTracker.report` shape:
        ``{"seq": int, "trees": {tree: {"root": hex, "digest": str}}}``.
        Raises :class:`StaleStateError` on sequence regression and
        :class:`IntegrityError` on a root change without a sequence
        advance — the report itself travelled over the untrusted wire,
        so it gets the same scrutiny as any fetched state.
        """
        seq = int(report.get("seq", 0))
        trees = report.get("trees", {}) or {}
        with self._lock:
            for tree, state in trees.items():
                root = str(state["root"])
                digest = int(str(state["digest"]), 16)
                key = (label, tree)
                latest = self._latest.get(key)
                if latest is not None:
                    if seq < latest.seq:
                        raise StaleStateError(
                            f"shard {label!r} tree {tree!r} reported "
                            f"seq {seq} behind ledger seq {latest.seq}: "
                            "rolled-back state"
                        )
                    if seq == latest.seq and root != latest.root:
                        raise IntegrityError(
                            f"shard {label!r} tree {tree!r} root changed "
                            f"without a sequence advance at seq {seq}: "
                            "tampered state"
                        )
                    if seq > latest.seq and root != latest.root:
                        self._retire(key, latest)
                self._latest[key] = LedgerEntry(seq, root, digest)

    def _retire(self, key: tuple[str, str], entry: LedgerEntry) -> None:
        if self._history_limit <= 0:
            return
        retired = self._retired.setdefault(key, OrderedDict())
        retired.pop(entry.root, None)
        retired[entry.root] = entry.seq
        while len(retired) > self._history_limit:
            retired.popitem(last=False)

    # -- lookup -------------------------------------------------------------

    def expect(self, label: str, tree: str) -> LedgerEntry | None:
        with self._lock:
            return self._latest.get((label, tree))

    def labels(self) -> list[str]:
        with self._lock:
            return sorted({label for label, _ in self._latest})

    def classify(self, tree: str, root: str, seq: int) -> str:
        """Classify a (root, seq) claim for ``tree`` against the ledger.

        Shard-merged reads lose which shard served an envelope, so the
        claim is checked against every shard's entry for the tree:

        * ``"current"`` — matches some shard's latest accepted root;
        * ``"stale"`` — matches a retired root, or regresses a shard
          sequence while presenting that shard's superseded state;
        * ``"unknown"`` — matches nothing the ledger ever accepted.
        """
        with self._lock:
            stale = False
            for (label, entry_tree), entry in self._latest.items():
                if entry_tree != tree:
                    continue
                if entry.root == root:
                    return "current"
                retired = self._retired.get((label, entry_tree))
                if retired is not None and root in retired:
                    stale = True
            if stale:
                return "stale"
            return "unknown"

    # -- cluster-level views -------------------------------------------------

    def cluster_digest(self, tree: str) -> int:
        """Sum of every shard's additive digest for ``tree``.

        Invariant under resharding (replication 1): migrating entries
        between shards moves leaf terms between addends without
        changing the sum.
        """
        with self._lock:
            return merge_digests(
                entry.digest
                for (label, entry_tree), entry in self._latest.items()
                if entry_tree == tree
            )

    def cluster_root(self, tree: str) -> str:
        return digest_root(self.cluster_digest(tree))

    def trees(self) -> list[str]:
        with self._lock:
            return sorted({tree for _, tree in self._latest})

    def stamp(self) -> tuple:
        """Hashable summary of every accepted (label, tree) watermark.

        The cache tier's coherence token: any accepted advance — a new
        sequence, a new root, a shard appearing or retiring — changes
        the stamp, so an entry stamped before the advance can never
        validate after it.
        """
        with self._lock:
            return tuple(sorted(
                (label, tree, entry.seq, entry.root)
                for (label, tree), entry in self._latest.items()
            ))

    def snapshot(self) -> dict:
        """Debug/report view of the ledger contents."""
        with self._lock:
            return {
                f"{label}:{tree}": {
                    "seq": entry.seq,
                    "root": entry.root,
                    "retired": len(self._retired.get((label, tree), ())),
                }
                for (label, tree), entry in sorted(self._latest.items())
            }
