"""Integrity subsystem configuration (``PipelineConfig.integrity``)."""

from __future__ import annotations

from dataclasses import dataclass

#: Verification modes.
MODE_FETCH = "fetch"
MODE_AUDIT = "audit"

_MODES = (MODE_FETCH, MODE_AUDIT)


@dataclass(frozen=True)
class IntegrityConfig:
    """How (and for whom) the gateway verifies untrusted-zone state.

    ``mode`` selects the verification style:

    * ``"fetch"`` — proof-on-fetch: every document read is rewritten to
      its proven variant and the inclusion proof is checked against the
      freshness ledger before the result reaches the executor.  Typed
      :class:`repro.errors.IntegrityError` /
      :class:`repro.errors.StaleStateError` on mismatch.
    * ``"audit"`` — audit-pass: reads are untouched (zero hot-path
      cost); a background/periodic sweep recomputes state roots on the
      cloud and compares them against the ledger.

    ``min_class`` selects *who* gets verification, per protection class
    (C1 strongest): verification activates once a registered schema
    carries a field of class ``min_class`` or stronger.  The default 5
    activates for any annotated schema; ``min_class=2`` would reserve
    proof-on-fetch overhead for C1/C2 data while C3+ applications run
    at seed speed.

    ``history`` bounds the retired-root memory per (shard, tree) used
    to distinguish rollback from tampering; ``refresh_on_write`` marks
    the ledger dirty whenever a mutation passes the gateway so the next
    verified read re-syncs shard watermarks first.
    """

    mode: str = MODE_FETCH
    min_class: int = 5
    history: int = 64
    refresh_on_write: bool = True

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"integrity mode must be one of {_MODES}, got {self.mode!r}"
            )
        if not 1 <= int(self.min_class) <= 5:
            raise ValueError("min_class must be a protection class 1..5")

    def covers_class(self, protection_class: int) -> bool:
        """Whether a field of ``protection_class`` activates verification."""
        return int(protection_class) <= int(self.min_class)
