"""Incremental Merkle trees with placement-stable additive digests.

The untrusted zone maintains one tree per authenticated state domain:
the encrypted document store and each provisioned tactic's secure-index
namespace.  Two digests are kept per tree:

* the **Merkle root** — a classic binary hash tree over the leaves in
  canonical (sorted-key) order, supporting per-leaf inclusion proofs
  checked by the gateway on fetch;
* the **additive set digest** — the sum of all leaf hashes interpreted
  as 256-bit integers, modulo ``2**256`` (the AdHash / MSet-Add-Hash
  construction).  Addition is commutative, so the digest of a cluster
  is the sum of its shards' digests *regardless of placement*: moving a
  leaf from shard A to shard B subtracts the term on one side and adds
  it on the other, leaving the cluster digest invariant.  That is what
  makes roots stable across resharding (the ``shard_export`` migration
  from PR 4 relocates entries without rewriting them).

Leaf and node hashes are domain-separated and every variable-length
part is 4-byte length-prefixed — the same canonical-encoding discipline
as :func:`repro.analysis.snapshot.zone_fingerprint` — so no two
distinct (key, value) pairs can collide structurally.
"""

from __future__ import annotations

import hashlib

#: Modulus of the additive set digest (hash outputs are 256 bits).
DIGEST_MOD = 1 << 256

#: Root reported for a tree with no leaves.
EMPTY_ROOT = hashlib.sha256(b"datablinder/empty-tree").hexdigest()


def _encode(tag: bytes, *parts: bytes) -> bytes:
    chunks = [tag]
    for part in parts:
        chunks.append(len(part).to_bytes(4, "big"))
        chunks.append(part)
    return b"".join(chunks)


def leaf_key(tag: bytes, *parts: bytes) -> bytes:
    """Canonical leaf key for a store entry.

    ``tag`` names the structure kind (``b"s"`` string, ``b"m"`` map
    entry, ``b"e"`` set member, ``b"c"`` counter, ``b"d"`` document);
    the length-prefixed encoding keeps composite names unambiguous
    (``("a\\x00b", "c")`` never collides with ``("a", "b\\x00c")``).
    """
    return _encode(tag, *parts)


def leaf_hash(key: bytes, value: bytes) -> bytes:
    """Domain-separated hash of one (key, value) leaf."""
    return hashlib.sha256(_encode(b"L", key, value)).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"N" + left + right).digest()


def merge_digests(digests) -> int:
    """Sum additive digests (per-shard -> cluster), mod ``2**256``."""
    total = 0
    for digest in digests:
        total = (total + int(digest)) % DIGEST_MOD
    return total


def digest_root(digest: int) -> str:
    """Hex commitment to an additive digest (the *cluster root*)."""
    payload = b"A" + (int(digest) % DIGEST_MOD).to_bytes(32, "big")
    return hashlib.sha256(payload).hexdigest()


class MerkleTree:
    """A mutable leaf set with an incrementally-maintained digest.

    Leaf updates are O(1): the additive digest is adjusted in place and
    the binary tree is only (re)built lazily when a Merkle root or an
    inclusion proof is actually requested.  The verification hot path
    on the cloud therefore costs one hash per mutation, not a tree
    rebuild.
    """

    def __init__(self) -> None:
        self._leaves: dict[bytes, bytes] = {}
        self._acc = 0
        self._dirty = True
        self._order: list[bytes] = []
        self._levels: list[list[bytes]] = []

    def __len__(self) -> int:
        return len(self._leaves)

    # -- mutation -----------------------------------------------------------

    def update(self, key: bytes, value: bytes) -> None:
        old = self._leaves.get(key)
        if old is not None:
            self._acc = (self._acc - int.from_bytes(old, "big")) % DIGEST_MOD
        new = leaf_hash(key, value)
        self._leaves[key] = new
        self._acc = (self._acc + int.from_bytes(new, "big")) % DIGEST_MOD
        self._dirty = True

    def remove(self, key: bytes) -> bool:
        old = self._leaves.pop(key, None)
        if old is None:
            return False
        self._acc = (self._acc - int.from_bytes(old, "big")) % DIGEST_MOD
        self._dirty = True
        return True

    def clear(self) -> None:
        self._leaves.clear()
        self._acc = 0
        self._dirty = True

    # -- digests ------------------------------------------------------------

    def digest(self) -> int:
        """The additive (placement-stable) digest of the leaf set."""
        return self._acc

    def root(self) -> str:
        """Merkle root over the leaves in sorted-key order (hex)."""
        if not self._leaves:
            return EMPTY_ROOT
        self._rebuild()
        return self._levels[-1][0].hex()

    def _rebuild(self) -> None:
        if not self._dirty:
            return
        self._order = sorted(self._leaves)
        level = [self._leaves[k] for k in self._order]
        levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(_node_hash(level[i], level[i + 1]))
            if len(level) % 2:
                # Odd node is promoted unchanged, mirroring the
                # verifier's promote rule.
                nxt.append(level[-1])
            levels.append(nxt)
            level = nxt
        self._levels = levels
        self._dirty = False

    # -- proofs -------------------------------------------------------------

    def proof(self, key: bytes) -> list[tuple[str, str]] | None:
        """Inclusion proof for ``key``: a list of ``(side, sibling_hex)``
        steps from leaf to root.  ``side`` is ``"L"``/``"R"`` for a
        sibling on that side, or ``"-"`` for a promoted odd node (no
        sibling at that level).  ``None`` when the key is not a leaf.
        """
        if key not in self._leaves:
            return None
        self._rebuild()
        index = self._order.index(key)
        path: list[tuple[str, str]] = []
        for level in self._levels[:-1]:
            sibling = index ^ 1
            if sibling < len(level):
                side = "L" if sibling < index else "R"
                path.append((side, level[sibling].hex()))
            else:
                path.append(("-", ""))
            index //= 2
        return path


def verify_inclusion(root_hex: str, key: bytes, value: bytes,
                     proof) -> bool:
    """Check that (key, value) is a leaf of the tree with root
    ``root_hex`` using an inclusion proof from :meth:`MerkleTree.proof`.

    Accepts the proof as tuples or lists (the wire codec round-trips
    tuples, but callers may hand decoded JSON lists).
    """
    if proof is None:
        return False
    node = leaf_hash(key, value)
    try:
        for step in proof:
            side, sibling_hex = step[0], step[1]
            if side == "-":
                continue
            sibling = bytes.fromhex(sibling_hex)
            if side == "L":
                node = _node_hash(sibling, node)
            elif side == "R":
                node = _node_hash(node, sibling)
            else:
                return False
    except (TypeError, ValueError, IndexError):
        return False
    return node.hex() == root_hex
