"""Gateway-side verification: proof-on-fetch and audit-pass.

:class:`VerifyingTransport` sits in the gateway's transport stack
between the batch collector (above) and the resilience wrapper (below).
In **fetch** mode it rewrites document reads to their proven variants
(``get`` -> ``get_proven``, ``get_many`` -> ``get_many_proven``),
checks each returned inclusion proof against the freshness ledger, and
unwraps the plain documents — the executor never sees the envelopes.
In **audit** mode reads pass through untouched and :meth:`audit`
performs the background sweep: re-sync the ledger from incremental
reports, then compare roots recomputed from raw store state against
what the ledger accepted at write time.

Ledger refreshes are lazy: mutations passing through the transport
mark the ledger dirty, and the next verification (or audit) pulls one
``report()`` round per shard before checking proofs — writes pay
nothing, and a verified read needs at most one extra round trip after
a write burst.

Detection semantics (see :mod:`repro.integrity.watermark` for the
trust model):

* bit-flipped document bytes, proof, or root -> proof/leaf mismatch or
  a root the ledger never accepted -> :class:`IntegrityError`;
* a replayed old-but-valid envelope or report -> a retired root or a
  sequence regression -> :class:`StaleStateError`.

Known limitations (documented, out of scope): no non-membership
proofs (a server can deny a document exists), and a protocol-time
attacker who answers with freshly forged state *and* consistent forged
reports is only caught by the audit pass if it ever contradicts a
write the gateway remembered.
"""

from __future__ import annotations

import asyncio
import threading
from contextvars import ContextVar
from typing import Any, Sequence

from repro.errors import IntegrityError, StaleStateError
from repro.integrity.config import MODE_FETCH, IntegrityConfig
from repro.integrity.merkle import leaf_key, verify_inclusion
from repro.integrity.watermark import FreshnessLedger
from repro.net import message
from repro.net.latency import NetworkStats
from repro.net.rpc import Request, Response
from repro.net.transport import Transport

#: Methods that mutate untrusted-zone state (any service): passing one
#: through the transport marks the freshness ledger dirty.
_MUTATING_METHODS = frozenset({
    "insert", "insert_many", "insert_terms", "update", "update_terms",
    "delete", "delete_terms", "replace",
})

_PROVEN = {"get": "get_proven", "get_many": "get_many_proven"}

#: Per-operation verification outcome, shared with the gateway runtime:
#: the runtime materialises a scope dict before launching an operation
#: and reads ``scope["verification"]`` after it completes.
_OP_SCOPE: ContextVar[dict | None] = ContextVar(
    "integrity_op_scope", default=None
)

VERIFICATION_KEY = "verification"


def begin_op_scope() -> dict:
    """Install a fresh outcome scope for the current context and return
    it.  The dict object is shared: tasks forked from this context see
    (and mutate) the same instance, so the creator can read the outcome
    after the operation finishes."""
    scope = {VERIFICATION_KEY: "unverified"}
    _OP_SCOPE.set(scope)
    return scope


def op_verification(scope: dict) -> str:
    return scope.get(VERIFICATION_KEY, "unverified")


def _note_outcome(outcome: str) -> None:
    scope = _OP_SCOPE.get()
    if scope is None:
        return
    if outcome == "failed" or scope.get(VERIFICATION_KEY) != "failed":
        scope[VERIFICATION_KEY] = outcome


class VerifyingTransport(Transport):
    """Transport wrapper enforcing the configured integrity mode."""

    def __init__(self, inner: Transport, application: str,
                 config: IntegrityConfig):
        self._inner = inner
        self.application = application
        self.config = config
        self._docs_service = f"docs/{application}"
        self._integrity_service = f"integrity/{application}"
        self.ledger = FreshnessLedger(history=config.history)
        self._active = False
        self._dirty = True
        self._refresh_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._integrity_failures = 0
        self._stale_detected = 0

    # -- activation (per protection class) ----------------------------------

    @property
    def active(self) -> bool:
        return self._active

    def activate(self) -> None:
        """Turn verification on — called when a registered schema
        carries a field whose protection class the config covers."""
        self._active = True

    def mark_dirty(self) -> None:
        self._dirty = True

    # -- sync call path ------------------------------------------------------

    def call(self, service: str, method: str, **kwargs: Any) -> Any:
        return self.call_request(Request(service, method, kwargs))

    def call_request(self, request: Request) -> Any:
        if self._should_verify(request.service, request.method):
            rewritten = self._rewrite(request)
            result = self._inner.call_request(rewritten)
            return self._check(request.method, result)
        result = self._inner.call_request(request)
        self._after_passthrough(request.method)
        return result

    def call_batch(self, requests: Sequence[Request]) -> list[Response]:
        rewritten, verified_slots = self._rewrite_batch(requests)
        responses = self._inner.call_batch(rewritten)
        if not verified_slots:
            return responses
        checked: list[Response] = list(responses)
        for index in verified_slots:
            response = responses[index]
            if not response.ok:
                continue
            try:
                checked[index] = Response(ok=True, result=self._check(
                    requests[index].method, response.result
                ))
            except IntegrityError as exc:
                checked[index] = Response(
                    ok=False, error_type=type(exc).__name__,
                    error_message=str(exc),
                )
        return checked

    # -- async call path -----------------------------------------------------

    async def call_request_async(self, request: Request) -> Any:
        if self._should_verify(request.service, request.method):
            rewritten = self._rewrite(request)
            result = await self._inner.call_request_async(rewritten)
            # The ledger refresh inside _check may itself hit the wire;
            # keep it off the event loop.
            return await asyncio.to_thread(
                self._check, request.method, result
            )
        result = await self._inner.call_request_async(request)
        self._after_passthrough(request.method)
        return result

    async def call_batch_async(
        self, requests: Sequence[Request]
    ) -> list[Response]:
        rewritten, verified_slots = self._rewrite_batch(requests)
        responses = await self._inner.call_batch_async(rewritten)
        if not verified_slots:
            return responses

        def check_all() -> list[Response]:
            checked: list[Response] = list(responses)
            for index in verified_slots:
                response = responses[index]
                if not response.ok:
                    continue
                try:
                    checked[index] = Response(ok=True, result=self._check(
                        requests[index].method, response.result
                    ))
                except IntegrityError as exc:
                    checked[index] = Response(
                        ok=False, error_type=type(exc).__name__,
                        error_message=str(exc),
                    )
            return checked

        return await asyncio.to_thread(check_all)

    # -- rewrite / verify core -----------------------------------------------

    def _should_verify(self, service: str, method: str) -> bool:
        return (
            self._active
            and self.config.mode == MODE_FETCH
            and service == self._docs_service
            and method in _PROVEN
        )

    def _rewrite(self, request: Request) -> Request:
        return Request(
            request.service, _PROVEN[request.method], request.kwargs
        )

    def _rewrite_batch(
        self, requests: Sequence[Request]
    ) -> tuple[list[Request], list[int]]:
        rewritten: list[Request] = []
        verified_slots: list[int] = []
        for index, request in enumerate(requests):
            if self._should_verify(request.service, request.method):
                rewritten.append(self._rewrite(request))
                verified_slots.append(index)
            else:
                rewritten.append(request)
                if request.method in _MUTATING_METHODS:
                    self._dirty = True
        return rewritten, verified_slots

    def _after_passthrough(self, method: str) -> None:
        if method in _MUTATING_METHODS and self.config.refresh_on_write:
            self._dirty = True

    def _check(self, original_method: str, result: Any) -> Any:
        """Verify proven-read envelopes, returning plain documents."""
        try:
            if original_method == "get":
                document = self._verify_envelope(result)
            else:
                document = [
                    self._verify_envelope(envelope) for envelope in result
                ]
        except StaleStateError:
            with self._stats_lock:
                self._stale_detected += 1
            _note_outcome("failed")
            raise
        except IntegrityError:
            with self._stats_lock:
                self._integrity_failures += 1
            _note_outcome("failed")
            raise
        _note_outcome("verified")
        return document

    def _verify_envelope(self, envelope: Any) -> dict:
        if not isinstance(envelope, dict) or "document" not in envelope:
            raise IntegrityError(
                "proven read returned a malformed envelope"
            )
        doc_id = str(envelope.get("_id"))
        document = envelope["document"]
        root = str(envelope.get("root"))
        try:
            seq = int(envelope.get("seq") or 0)
        except (TypeError, ValueError):
            seq = 0
        self._ensure_fresh()
        classification = self.ledger.classify("docs", root, seq)
        if classification == "unknown":
            # The state may legitimately have advanced past our last
            # refresh (a write raced the read); re-sync once before
            # declaring the root bogus.
            self._refresh(force=True)
            classification = self.ledger.classify("docs", root, seq)
        if classification == "stale":
            raise StaleStateError(
                f"document {doc_id!r} served under retired root "
                f"{root[:16]}... (seq {seq}): rolled-back state"
            )
        if classification == "unknown":
            raise IntegrityError(
                f"document {doc_id!r} served under root {root[:16]}... "
                "the ledger never accepted: tampered state"
            )
        if not isinstance(document, dict):
            raise IntegrityError(
                f"document {doc_id!r} body is not a document"
            )
        key = leaf_key(b"d", doc_id.encode())
        value = message.encode(document)
        if not verify_inclusion(root, key, value,
                                envelope.get("proof")):
            raise IntegrityError(
                f"inclusion proof for document {doc_id!r} does not "
                "verify against the accepted root: tampered state"
            )
        return document

    # -- ledger refresh ------------------------------------------------------

    def _ensure_fresh(self) -> None:
        if self._dirty:
            self._refresh(force=False)

    def _refresh(self, force: bool) -> None:
        with self._refresh_lock:
            if not self._dirty and not force:
                return
            reports = self._inner.call_labeled(
                self._integrity_service, "report"
            )
            try:
                for label, report in sorted(reports.items()):
                    self.ledger.accept_report(label, report)
            except StaleStateError:
                with self._stats_lock:
                    self._stale_detected += 1
                _note_outcome("failed")
                raise
            except IntegrityError:
                with self._stats_lock:
                    self._integrity_failures += 1
                _note_outcome("failed")
                raise
            self._dirty = False

    def coherence_stamp(self, force: bool = True) -> tuple:
        """The ledger's watermark stamp, after a report re-sync.

        The cache tier's single ledger-validation check: ``force=True``
        (hit validation) pulls one ``report()`` round per shard so a
        cross-gateway write, rollback or reshard is guaranteed to move
        the stamp; ``force=False`` (entry fill) re-syncs only when a
        write left the ledger dirty.  A tampered or rolled-back report
        raises here with the same accounting as a verified read.
        """
        if force:
            self._refresh(force=True)
        else:
            self._ensure_fresh()
        return self.ledger.stamp()

    # -- audit pass ----------------------------------------------------------

    def audit(self) -> dict:
        """Background sweep: reconcile ledger vs recomputed state roots.

        Returns a summary dict; raises :class:`IntegrityError` /
        :class:`StaleStateError` when any shard's recomputed state
        contradicts what the ledger accepted at write time.
        """
        self._refresh(force=True)
        audits = self._inner.call_labeled(
            self._integrity_service, "audit_report"
        )
        checked = 0
        for label, audit in sorted(audits.items()):
            for tree, state in (audit.get("trees") or {}).items():
                expected = self.ledger.expect(label, tree)
                if expected is None:
                    continue
                checked += 1
                if str(state["root"]) != expected.root:
                    with self._stats_lock:
                        self._integrity_failures += 1
                    raise IntegrityError(
                        f"audit: shard {label!r} tree {tree!r} "
                        "recomputed root diverges from the ledger: "
                        "out-of-band tampering"
                    )
        return {
            "shards": len(audits),
            "roots_checked": checked,
            "cluster": {
                tree: self.ledger.cluster_root(tree)
                for tree in self.ledger.trees()
            },
        }

    # -- stats / delegation --------------------------------------------------

    def _own_stats(self) -> NetworkStats:
        with self._stats_lock:
            return NetworkStats(
                integrity_failures=self._integrity_failures,
                stale_detected=self._stale_detected,
            )

    def stats(self) -> NetworkStats:
        return self._inner.stats().merge(self._own_stats())

    def labeled_stats(self) -> dict[str, NetworkStats]:
        inner = dict(self._inner.labeled_stats())
        own = self._own_stats()
        if len(inner) == 1:
            label, stats = next(iter(inner.items()))
            return {label: stats.merge(own)}
        inner["integrity"] = inner.get(
            "integrity", NetworkStats()
        ).merge(own)
        return inner

    def call_labeled(self, service: str, method: str,
                     **kwargs: Any) -> dict[str, Any]:
        return self._inner.call_labeled(service, method, **kwargs)

    def topology_epoch(self) -> int:
        return self._inner.topology_epoch()

    def drain_shard_timings(self) -> list[tuple[str, float]]:
        return self._inner.drain_shard_timings()

    def drain_async_writes(self, timeout: float | None = None) -> int:
        return self._inner.drain_async_writes(timeout)

    def close(self) -> None:
        self._inner.close()
