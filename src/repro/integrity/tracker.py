"""Cloud-side integrity tracking: per-domain Merkle state + reports.

An :class:`IntegrityTracker` attaches mutation observers to one
application's stores (the KV secure-index store and the document store)
and maintains one :class:`repro.integrity.merkle.MerkleTree` per state
domain:

* ``"docs"`` — every encrypted document, leaf value =
  :func:`repro.net.message.encode` of the stored body (the same
  canonical bytes :func:`repro.analysis.snapshot.zone_fingerprint`
  hashes);
* ``"tactic/<app>/<field>/<tactic>"`` — every KV entry under that
  provisioned tactic's key namespace (the ``state_key`` prefix from
  :class:`repro.spi.context.CloudTacticContext`);
* ``"kv"`` — any KV entry outside a tactic namespace.

Every tracked mutation bumps a monotonic sequence seeded from the WAL
append watermark, so the (root, seq) pairs the tracker reports line up
with the ``last_snapshot_seq`` freshness machinery: state restored from
an old snapshot cannot reach the current sequence without replaying the
same mutations the gateway already counted.

The tracker lives in the *untrusted* zone — it is bookkeeping, not a
root of trust.  Trust comes from the gateway ledger
(:mod:`repro.integrity.watermark`) remembering what the tracker
reported at write time and refusing regressions later.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.integrity.merkle import MerkleTree, leaf_key
from repro.net import message
from repro.stores.docstore import DocumentStore
from repro.stores.kv import KeyValueStore

#: KV keys under this prefix belong to a provisioned tactic's namespace.
_TACTIC_PREFIX = b"tactic/"


def tree_for_key(key: bytes) -> str:
    """Map a KV key to its authenticated state domain.

    Tactic state keys are ``service_name(...).encode() + b"/" + part``
    with ``service_name = "tactic/{app}/{field}/{tactic}"`` — the first
    four ``/``-separated segments name the domain, so one tree covers
    exactly one provisioned tactic instance and stays stable when its
    entries migrate between shards.
    """
    if key.startswith(_TACTIC_PREFIX):
        parts = key.split(b"/", 4)
        if len(parts) >= 4:
            return b"/".join(parts[:4]).decode("utf-8", "replace")
    return "kv"


def _doc_leaf(document: dict) -> tuple[bytes, bytes]:
    doc_id = str(document["_id"])
    return leaf_key(b"d", doc_id.encode()), message.encode(document)


class IntegrityTracker:
    """Incremental Merkle state over one application's stores."""

    def __init__(self, kv: KeyValueStore, documents: DocumentStore):
        self._kv = kv
        self._documents = documents
        self._lock = threading.RLock()
        self._trees: dict[str, MerkleTree] = {}
        self._counters: dict[bytes, int] = {}
        # Seed the sequence from the WAL append watermarks so a restart
        # from persisted state resumes at (not below) the sequence the
        # gateway last saw; in-memory stores start at 0.
        self._seq = kv.wal_sequence() + documents.wal_sequence()
        self._rebuild_from_state()
        kv.add_mutation_observer(self._on_kv_record)
        documents.add_mutation_observer(self._on_doc_record)

    # -- initial build -------------------------------------------------------

    def _tree(self, name: str) -> MerkleTree:
        tree = self._trees.get(name)
        if tree is None:
            tree = self._trees[name] = MerkleTree()
        return tree

    def _rebuild_from_state(self) -> None:
        with self._lock:
            self._trees = {"docs": MerkleTree()}
            self._counters = {}
            _build_kv_trees(self._kv, self._tree, self._counters)
            docs_tree = self._trees["docs"]
            for document in self._documents.iter_documents():
                key, value = _doc_leaf(document)
                docs_tree.update(key, value)

    # -- mutation observers --------------------------------------------------

    def _on_kv_record(self, record: dict) -> None:
        with self._lock:
            op = record.get("op")
            if op == "put":
                key = record["k"]
                self._tree(tree_for_key(key)).update(
                    leaf_key(b"s", key), record["v"]
                )
            elif op == "del":
                key = record["k"]
                self._tree(tree_for_key(key)).remove(leaf_key(b"s", key))
            elif op == "mput":
                name = record["n"]
                self._tree(tree_for_key(name)).update(
                    leaf_key(b"m", name, record["f"]), record["v"]
                )
            elif op == "mdel":
                name = record["n"]
                self._tree(tree_for_key(name)).remove(
                    leaf_key(b"m", name, record["f"])
                )
            elif op == "sadd":
                name = record["n"]
                self._tree(tree_for_key(name)).update(
                    leaf_key(b"e", name, record["m"]), b"1"
                )
            elif op == "srem":
                name = record["n"]
                self._tree(tree_for_key(name)).remove(
                    leaf_key(b"e", name, record["m"])
                )
            elif op == "incr":
                name = record["n"]
                value = self._counters.get(name, 0) + record["d"]
                self._counters[name] = value
                self._set_counter_leaf(name, value)
            elif op == "cset":
                name = record["n"]
                value = record["v"]
                self._counters[name] = value
                self._set_counter_leaf(name, value)
            elif op == "flush":
                docs = self._trees.get("docs") or MerkleTree()
                self._trees = {"docs": docs}
                self._counters = {}
            self._seq += 1

    def _set_counter_leaf(self, name: bytes, value: int) -> None:
        """Commit a counter value, canonicalising 0 as leaf-absent.

        ``namespace_drop`` resets counters to 0 instead of deleting
        them; treating 0 as absence keeps the cluster digest invariant
        when a tactic namespace relocates during resharding.
        """
        tree = self._tree(tree_for_key(name))
        if value == 0:
            tree.remove(leaf_key(b"c", name))
        else:
            tree.update(leaf_key(b"c", name), str(value).encode())

    def _on_doc_record(self, record: dict) -> None:
        with self._lock:
            op = record.get("op")
            if op in ("insert", "replace"):
                key, value = _doc_leaf(record["doc"])
                self._tree("docs").update(key, value)
            elif op == "delete":
                self._tree("docs").remove(
                    leaf_key(b"d", str(record["id"]).encode())
                )
            self._seq += 1

    # -- reports -------------------------------------------------------------

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    def report(self) -> dict:
        """Incremental (root, digest) per tree plus the seq watermark."""
        with self._lock:
            return {
                "seq": self._seq,
                "trees": {
                    name: {
                        "root": tree.root(),
                        "digest": f"{tree.digest():064x}",
                        "leaves": len(tree),
                    }
                    for name, tree in self._trees.items()
                },
            }

    def audit_report(self) -> dict:
        """Roots recomputed from the raw store state, bypassing the
        incremental trees.

        An attacker who edits the stores out-of-band (the snapshot
        adversary writing directly to "Redis"/"MongoDB") never fires
        the mutation observers, so the incremental report keeps
        matching the gateway ledger — but this recomputation diverges,
        which is exactly what the audit pass compares.
        """
        trees: dict[str, MerkleTree] = {"docs": MerkleTree()}

        def tree(name: str) -> MerkleTree:
            found = trees.get(name)
            if found is None:
                found = trees[name] = MerkleTree()
            return found

        _build_kv_trees(self._kv, tree, {})
        docs_tree = trees["docs"]
        for document in self._documents.iter_documents():
            key, value = _doc_leaf(document)
            docs_tree.update(key, value)
        with self._lock:
            seq = self._seq
        return {
            "seq": seq,
            "trees": {
                name: {
                    "root": t.root(),
                    "digest": f"{t.digest():064x}",
                    "leaves": len(t),
                }
                for name, t in trees.items()
            },
        }

    # -- proofs --------------------------------------------------------------

    def prove_document(self, doc_id: str, document: dict) -> dict:
        """Proof envelope for one fetched document.

        Callers must hold the document store's lock across fetch +
        prove (see ``DocumentService.get_proven``) so the proof is
        computed against the same tree state the body was read from.
        """
        with self._lock:
            tree = self._tree("docs")
            key, _ = _doc_leaf(document)
            return {
                "_id": doc_id,
                "document": document,
                "proof": tree.proof(key),
                "root": tree.root(),
                "seq": self._seq,
            }


def _build_kv_trees(kv: KeyValueStore, tree, counters: dict) -> None:
    """Feed every KV structure into per-domain trees (raw-state scan)."""
    with kv._lock:  # noqa: SLF001 - same-package raw-state scan
        for key, value in kv._strings.items():  # noqa: SLF001
            tree(tree_for_key(key)).update(leaf_key(b"s", key), value)
        for name, bucket in kv._maps.items():  # noqa: SLF001
            domain = tree(tree_for_key(name))
            for field, value in bucket.items():
                domain.update(leaf_key(b"m", name, field), value)
        for name, members in kv._sets.items():  # noqa: SLF001
            domain = tree(tree_for_key(name))
            for member in members:
                domain.update(leaf_key(b"e", name, member), b"1")
        for name, value in kv._counters.items():  # noqa: SLF001
            counters[name] = value
            if value != 0:  # 0 is canonicalised as leaf-absent
                tree(tree_for_key(name)).update(
                    leaf_key(b"c", name), str(value).encode()
                )


def digest_of_namespace_dump(dump: dict) -> str:
    """Additive digest of a ``KeyValueStore.namespace_dump`` record.

    Computes the same per-entry leaf terms the tracker maintains for
    that namespace, so a tactic can attest its own index state
    (``CloudTactic.state_digest``) and tests can cross-check it against
    the tracker's tree digest for the tactic's domain.
    """
    tree = MerkleTree()
    for key, value in dump.get("strings", {}).items():
        tree.update(leaf_key(b"s", bytes.fromhex(key)),
                    bytes.fromhex(value))
    for name, bucket in dump.get("maps", {}).items():
        raw = bytes.fromhex(name)
        for field, value in bucket.items():
            tree.update(leaf_key(b"m", raw, bytes.fromhex(field)),
                        bytes.fromhex(value))
    for name, members in dump.get("sets", {}).items():
        raw = bytes.fromhex(name)
        for member in members:
            tree.update(leaf_key(b"e", raw, bytes.fromhex(member)), b"1")
    for name, value in dump.get("counters", {}).items():
        if value != 0:  # 0 is canonicalised as leaf-absent
            tree.update(leaf_key(b"c", bytes.fromhex(name)),
                        str(value).encode())
    return f"{tree.digest():064x}"


class IntegrityService:
    """RPC face of one application's tracker (``integrity/<app>``)."""

    def __init__(self, tracker: IntegrityTracker):
        self._tracker = tracker

    def report(self) -> dict:
        return self._tracker.report()

    def audit_report(self) -> dict:
        return self._tracker.audit_report()

    def prove(self, tree: str, key: Any) -> dict:
        """Inclusion proof for an arbitrary leaf (diagnostics)."""
        raw = key if isinstance(key, bytes) else bytes.fromhex(str(key))
        with self._tracker._lock:  # noqa: SLF001 - same package
            domain = self._tracker._tree(tree)  # noqa: SLF001
            return {
                "tree": tree,
                "root": domain.root(),
                "seq": self._tracker._seq,  # noqa: SLF001
                "proof": domain.proof(raw),
            }
