"""Integrity & freshness subsystem: Merkle-authenticated untrusted zone.

The seed threat model (honest-but-curious, snapshot adversary) trusts
the cloud to return what was written.  This package closes that gap for
an *actively malicious* host:

* :mod:`repro.integrity.merkle` — incremental Merkle trees with
  placement-stable additive digests over the document store and each
  tactic's secure-index namespace;
* :mod:`repro.integrity.tracker` — the cloud-side trackers maintaining
  those trees from store mutation observers, plus the
  ``integrity/<app>`` report/proof RPC service;
* :mod:`repro.integrity.watermark` — the gateway-held freshness ledger
  that makes a replayed old-but-valid snapshot *stale*, not merely
  unverifiable;
* :mod:`repro.integrity.verify` — the verifying transport implementing
  proof-on-fetch and the audit pass;
* :mod:`repro.integrity.config` — ``PipelineConfig.integrity`` knobs
  (mode, protection-class coverage, rollback history).

Defaults off: without an :class:`IntegrityConfig` the gateway stack,
stores and wire traffic are byte-identical to the seed.
"""

from repro.integrity.config import MODE_AUDIT, MODE_FETCH, IntegrityConfig
from repro.integrity.merkle import (
    EMPTY_ROOT,
    MerkleTree,
    digest_root,
    leaf_hash,
    leaf_key,
    merge_digests,
    verify_inclusion,
)
from repro.integrity.tracker import (
    IntegrityService,
    IntegrityTracker,
    digest_of_namespace_dump,
    tree_for_key,
)
from repro.integrity.verify import (
    VerifyingTransport,
    begin_op_scope,
    op_verification,
)
from repro.integrity.watermark import FreshnessLedger, LedgerEntry

__all__ = [
    "EMPTY_ROOT",
    "MODE_AUDIT",
    "MODE_FETCH",
    "FreshnessLedger",
    "IntegrityConfig",
    "IntegrityService",
    "IntegrityTracker",
    "LedgerEntry",
    "MerkleTree",
    "VerifyingTransport",
    "begin_op_scope",
    "digest_of_namespace_dump",
    "digest_root",
    "leaf_hash",
    "leaf_key",
    "merge_digests",
    "op_verification",
    "tree_for_key",
    "verify_inclusion",
]
