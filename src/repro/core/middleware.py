"""The DataBlinder facade: wiring the four subsystems together.

One :class:`DataBlinder` per application, deployed in the trusted zone
(the data protection gateway of Fig. 3).  It exposes the three gateway
interfaces of the deployment view:

* **Schema** — :meth:`register_schema` annotates a schema, runs adaptive
  tactic selection, audits the resulting plans against the weakest-link
  policy, provisions both zones, and persists the metadata.
* **Entities** — :meth:`entities` returns the data-access API bound to a
  registered schema.
* **Keys** — the :class:`repro.keys.keystore.KeyStore` (HSM-backed) is
  owned here and injected into every tactic.

Typical use::

    cloud = CloudZone()
    transport = InProcTransport(cloud.host)
    blinder = DataBlinder("ehealth", transport)
    blinder.register_schema(observation_schema)
    observations = blinder.entities("observation")
    observations.insert({...})
"""

from __future__ import annotations

import threading

from repro.core.entities import Entities
from repro.core.executor import SchemaExecutor
from repro.core.metadata import MetadataRepository
from repro.core.policy import (
    FieldPolicyReport,
    audit_plans,
    render_policy_table,
)
from repro.core.registry import TacticRegistry, default_registry
from repro.core.schema import Schema
from repro.core.selection import TacticSelector
from repro.errors import SchemaError
from repro.gateway.service import GatewayRuntime
from repro.keys.keystore import KeyStore
from repro.net.batch import PipelineConfig
from repro.net.resilience import ResilienceConfig
from repro.net.transport import Transport
from repro.stores.kv import KeyValueStore


class DataBlinder:
    """Distributed data protection middleware, gateway side."""

    def __init__(self, application: str, transport: Transport,
                 registry: TacticRegistry | None = None,
                 keystore: KeyStore | None = None,
                 local_kv: KeyValueStore | None = None,
                 verify_results: bool = True,
                 pad_bucket: int = 0,
                 pipeline: PipelineConfig | None = None,
                 resilience: ResilienceConfig | None = None):
        self.registry = registry or default_registry()
        #: Batching/pipelining of the gateway<->cloud data path; the
        #: default config keeps the unbatched per-RPC baseline.
        self.pipeline = pipeline or PipelineConfig()
        #: Retry/breaker wrapping of the transport; None (the default)
        #: keeps the raw fail-fast behaviour.
        self.resilience = resilience
        if not isinstance(transport, Transport):
            # A sequence of (name, transport) pairs deploys the sharded
            # untrusted zone; PipelineConfig.sharding tunes the ring.
            from repro.shard.router import ShardedTransport

            transport = ShardedTransport(list(transport),
                                         self.pipeline.sharding)
        self.runtime = GatewayRuntime(
            application, transport, self.registry, keystore, local_kv,
            pipeline=self.pipeline, resilience=resilience,
        )
        self.metadata = MetadataRepository(self.runtime.local_kv)
        self.selector = TacticSelector(self.registry)
        self.verify_results = verify_results
        #: Optional body padding bucket (bytes); 0 disables padding.
        self.pad_bucket = pad_bucket
        self._executors: dict[str, SchemaExecutor] = {}
        self._async_runtime = None
        self._lock = threading.RLock()

    @property
    def application(self) -> str:
        return self.runtime.application

    # -- Schema interface ---------------------------------------------------------

    def register_schema(self, schema: Schema) -> list[FieldPolicyReport]:
        """Plan, audit, provision and persist one schema.

        Returns the per-field policy reports (the §5.1 table); raises
        :class:`repro.errors.PolicyError` if any selected tactic set
        would leak above its field's annotated class.
        """
        with self._lock:
            if schema.name in self._executors:
                raise SchemaError(
                    f"schema {schema.name!r} is already registered"
                )
            plans = self.selector.plan_schema(schema)
            reports = audit_plans(plans, self.registry)
            executor = SchemaExecutor(
                self.runtime, schema, plans,
                verify_results=self.verify_results,
                pad_bucket=self.pad_bucket,
                pipeline=self.pipeline,
            )
            self.metadata.save_schema(schema, plans)
            self._executors[schema.name] = executor
            self.runtime.schema_registered(schema)
            return reports

    def restore_schema(self, name: str) -> list[FieldPolicyReport]:
        """Reload a previously registered schema from stored metadata."""
        with self._lock:
            if name in self._executors:
                raise SchemaError(f"schema {name!r} is already registered")
            schema = self.metadata.load_schema(name)
            plans = self.metadata.load_plans(name)
            reports = audit_plans(plans, self.registry)
            self._executors[name] = SchemaExecutor(
                self.runtime, schema, plans,
                verify_results=self.verify_results,
                pad_bucket=self.pad_bucket,
                pipeline=self.pipeline,
            )
            self.runtime.schema_registered(schema)
            return reports

    def schema_names(self) -> list[str]:
        with self._lock:
            return sorted(self._executors)

    def migrate_schema(self, schema_name: str,
                       new_schema: Schema | None = None
                       ) -> list[FieldPolicyReport]:
        """Re-plan a schema and re-encrypt/re-index its corpus.

        The operational half of crypto agility: after a registry change
        (a scheme retired or a better one registered) or an annotation
        change (``new_schema``), this re-runs adaptive selection, audits
        the new plans, and migrates every stored document — each is read
        and decrypted under the old configuration, its old index entries
        are removed, and it is re-inserted under the new plans with the
        same document id.  Cloud services of retired tactics remain
        provisioned but hold no live entries afterwards.

        The migration is a stop-the-world drill (documents are briefly
        absent between delete and re-insert); run it in a maintenance
        window, as an operator would.
        """
        with self._lock:
            old_executor = self._executor(schema_name)
            schema = new_schema if new_schema is not None else (
                old_executor.schema
            )
            if schema.name != schema_name:
                raise SchemaError(
                    "migration cannot rename a schema "
                    f"({schema.name!r} != {schema_name!r})"
                )
            plans = self.selector.plan_schema(schema)
            reports = audit_plans(plans, self.registry)
            new_executor = SchemaExecutor(
                self.runtime, schema, plans,
                verify_results=self.verify_results,
                pad_bucket=self.pad_bucket,
                pipeline=self.pipeline,
            )
            doc_ids = self.runtime.docs("all_ids", schema=schema_name)
            for doc_id in doc_ids:
                document = old_executor.get(doc_id)
                old_executor.delete(doc_id)
                document["_id"] = doc_id
                new_executor.insert(document)
            # Migration invalidates compiled plans: the old executor's
            # cache is dropped and its invalidation count carries over,
            # so planner stats stay continuous across the swap.
            new_executor.planner.absorb(old_executor.planner)
            self.metadata.save_schema(schema, plans)
            self._executors[schema_name] = new_executor
            self.runtime.schema_registered(schema)
            return reports

    def policy_report(self, schema_name: str) -> str:
        """Human-readable policy table for a registered schema."""
        executor = self._executor(schema_name)
        reports = audit_plans(executor.plans, self.registry)
        return render_policy_table(reports)

    # -- Entities interface ------------------------------------------------------------

    def entities(self, schema_name: str) -> Entities:
        return Entities(self._executor(schema_name))

    def async_entities(self, schema_name: str):
        """The awaitable data API (see :class:`AsyncEntities`)."""
        from repro.core.entities import AsyncEntities

        return AsyncEntities(self._executor(schema_name))

    def async_runtime(self, **kwargs):
        """Get-or-create this application's async gateway runtime.

        Keyword arguments (``max_in_flight``, ``default_deadline_s``,
        ``front``, ...) configure the runtime on first call; later
        calls return the cached instance and reject reconfiguration.
        """
        from repro.gateway.runtime import AsyncGatewayRuntime

        with self._lock:
            if self._async_runtime is None:
                self._async_runtime = AsyncGatewayRuntime(self, **kwargs)
            elif kwargs:
                raise ValueError(
                    "async runtime already configured; close() it "
                    "before reconfiguring"
                )
            return self._async_runtime

    def sync_gateway(self, principal: str = "anonymous",
                     deadline_s: float | None = None, **kwargs):
        """The blocking façade over the async runtime (service tier)."""
        from repro.gateway.runtime import SyncGateway

        return SyncGateway(self.async_runtime(**kwargs),
                           principal=principal, deadline_s=deadline_s)

    def _executor(self, schema_name: str) -> SchemaExecutor:
        with self._lock:
            executor = self._executors.get(schema_name)
        if executor is None:
            raise SchemaError(
                f"schema {schema_name!r} is not registered; call "
                f"register_schema or restore_schema first"
            )
        return executor

    # -- Keys interface -------------------------------------------------------------------

    @property
    def keystore(self) -> KeyStore:
        return self.runtime.keystore

    # -- Telemetry --------------------------------------------------------------------------

    def metrics_report(self) -> str:
        """Per-tactic runtime cost report (Fig. 1 performance metrics)."""
        return self.runtime.metrics.render()

    def integrity_audit(self) -> dict:
        """Run one integrity audit pass against the untrusted zone.

        Re-syncs the freshness ledger from every shard's incremental
        state report, then compares roots recomputed from the raw
        stores against what the ledger accepted at write time.  Raises
        :class:`repro.errors.IntegrityError` /
        :class:`repro.errors.StaleStateError` on divergence; raises
        :class:`repro.errors.PolicyError` when integrity is not
        configured (``PipelineConfig.integrity``).
        """
        verifier = self.runtime.verifier
        if verifier is None:
            from repro.errors import PolicyError

            raise PolicyError(
                "integrity is not configured: set PipelineConfig.integrity"
            )
        return verifier.audit()

    # -- query planning -------------------------------------------------------

    def explain(self, schema_name: str, predicate=None, *,
                operation: str = "find", **kwargs) -> str:
        """Rendered query plan — node tree with per-node cost + leakage.

        ``operation`` is any of the planner's operations (``find``,
        ``find_ids``, ``count``, ``aggregate``, ``find_sorted``,
        ``insert``/``update``/``delete``); extra keyword arguments are
        forwarded (``limit=``, ``field=``, ``function=``, ...).  Nothing
        is executed and the plan cache is untouched.
        """
        return self._executor(schema_name).explain(
            operation=operation, predicate=predicate, **kwargs
        )

    def planner_stats(self, schema_name: str) -> dict:
        """Plan-cache and node-timing counters for one schema."""
        return self._executor(schema_name).planner.stats.snapshot()

    def planner_report(self, schema_name: str) -> str:
        """Human-readable planner statistics for one schema."""
        return self._executor(schema_name).planner.stats.render()
