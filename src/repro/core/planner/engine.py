"""Engine: plan execution over the batch/fan-out/prefetch machinery.

Every :class:`~repro.net.batch.PipelineConfig` semantic of the seed
executor is preserved node-by-node: boolean CNF clauses resolve in one
``bool_query_terms`` round before anything else, independent literals
fan out on the shared bounded pool (serial evaluation keeps the
empty-intersection short circuit), candidate fetches are chunked with
optional next-chunk prefetch, and write pipelines run inside one batch
collection scope.

The engine additionally records a latency observation per executed node
into the runtime's :class:`~repro.spi.metrics.CostObservatory` — the
feedback half of cost-based adaptive selection — and per-node-kind
timings into the planner's stats.

Two deliberate fixes over the seed:

* an early ``limit`` return no longer leaks the pending prefetch future
  — it is cancelled, or drained when already running, on every exit
  path;
* all fetch chunk sizes resolve through the single
  ``PipelineConfig.fetch_chunk`` knob (0 keeps the per-operation legacy
  defaults).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING, Any

from repro.core.planner import ir
from repro.core.query import Predicate, evaluate_plain
from repro.crypto.encoding import Value
from repro.errors import DocumentNotFound, QueryError, RemoteError
from repro.spi.interfaces import (
    GatewayDeletion,
    GatewayInsertion,
    GatewayUpdate,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executor import SchemaExecutor
    from repro.core.planner.planner import PlannerStats


class Run:
    """Per-execution context: bindings plus the run-scoped id memo."""

    __slots__ = ("bindings", "predicate", "_all_ids", "_lock")

    def __init__(self, bindings: list, predicate: Predicate | None):
        self.bindings = bindings
        self.predicate = predicate
        self._all_ids: set[str] | None = None
        self._lock = threading.Lock()

    def all_ids(self, fetch) -> set[str]:
        """One ``all_ids`` fetch per evaluation, shared by every node
        (and safe under the concurrent fan-out)."""
        with self._lock:
            if self._all_ids is None:
                self._all_ids = fetch()
            return self._all_ids

    def value(self, slot: int | None):
        if slot is None:
            return None
        return self.bindings[slot]


class PlanEngine:
    def __init__(self, executor: "SchemaExecutor", stats: "PlannerStats"):
        self._x = executor
        self._stats = stats

    # -- observation helpers ---------------------------------------------------

    def _observe(self, scope: str, operation: str, tactic: str,
                 seconds: float, kind: str) -> None:
        self._x.runtime.cost.observe(scope, operation, tactic, seconds)
        self._stats.record_node(f"{kind}:{tactic}", seconds)
        self._drain_shard_timings()

    def _drain_shard_timings(self) -> None:
        """Attribute per-shard wire time to ``Shard:<node>`` stat rows.

        The sharded router accumulates (node, seconds) pairs on the
        calling thread; non-sharded transports return nothing and this
        is a no-op.
        """
        for shard, seconds in self._x.runtime.drain_shard_timings():
            self._stats.record_node(f"Shard:{shard}", seconds)

    def _timed_docs(self, operation: str, kind: str, method: str,
                    **kwargs: Any) -> Any:
        started = time.perf_counter()
        result = self._x.runtime.docs(method, **kwargs)
        self._observe(self._x.schema.name, operation, "docs",
                      time.perf_counter() - started, kind)
        return result

    # -- id-producing nodes ----------------------------------------------------

    def eval_ids(self, node: ir.PlanNode, run: Run) -> set[str]:
        if isinstance(node, ir.AllIds):
            return set(run.all_ids(self._fetch_all_ids))
        if isinstance(node, ir.IndexLookup):
            return self._lookup_ids(node, run)
        if isinstance(node, ir.BoolQuery):
            return self._bool_ids(node, run)
        if isinstance(node, ir.SetOp):
            if node.op == "union":
                union: set[str] = set()
                for part in node.parts:
                    union |= self.eval_ids(part, run)
                return union
            if node.op == "diff":
                base = self.eval_ids(node.parts[0], run)
                return base - self.eval_ids(node.parts[1], run)
            return self._intersect_ids(node.parts, run)
        if isinstance(node, ir.ProjectIds):
            return {
                document["_id"]
                for document in self._docs(node.source, run, limit=None)
            }
        raise QueryError(f"cannot evaluate plan node {node.kind}")

    def _fetch_all_ids(self) -> set[str]:
        return set(self._timed_docs(
            "all_ids", "AllIds", "all_ids", schema=self._x.schema.name
        ))

    def _lookup_ids(self, node: ir.IndexLookup, run: Run) -> set[str]:
        x = self._x
        if node.tactic is None:
            if node.op == "eq":
                query = {
                    "schema": x.schema.name,
                    f"plain.{node.field}": run.value(node.param),
                }
            else:
                bounds: dict[str, Value] = {}
                if node.low_param is not None:
                    bounds["$gte"] = run.value(node.low_param)
                if node.high_param is not None:
                    bounds["$lte"] = run.value(node.high_param)
                query = {
                    "schema": x.schema.name,
                    f"plain.{node.field}": bounds,
                }
            return set(self._timed_docs(
                "find_plain", "IndexLookup", "find_plain", query=query
            ))
        instance = x.lookup_instance(node.field, node.role, node.tactic)
        started = time.perf_counter()
        if node.op == "eq":
            ids = instance.resolve_eq(
                instance.eq_query(run.value(node.param))
            )
        else:
            ids = instance.range_query(
                run.value(node.low_param), run.value(node.high_param)
            )
        self._observe(
            f"{x.schema.name}.{node.field}", node.op, node.tactic,
            time.perf_counter() - started, "IndexLookup",
        )
        self._stats.record_choice(node.field, node.role or node.op,
                                  node.tactic)
        return set(ids)

    def _bool_ids(self, node: ir.BoolQuery, run: Run) -> set[str]:
        x = self._x
        instance = x.runtime.tactic(x._bool_scope(), node.tactic)
        started = time.perf_counter()
        cnf_terms = [
            [
                instance.term(field, run.value(slot))
                for field, slot in clause
            ]
            for clause in node.clauses
        ]
        raw = instance.bool_query_terms(cnf_terms)
        ids = instance.resolve_bool(raw)
        self._observe(
            x._bool_scope(), "bool", node.tactic,
            time.perf_counter() - started, "BoolQuery",
        )
        return set(ids)

    def _intersect_ids(self, parts: tuple[ir.PlanNode, ...],
                       run: Run) -> set[str]:
        """Ordered intersection with the seed's concurrency semantics.

        Boolean clauses (always compiled first) resolve serially; the
        remaining parts fan out literal-by-literal when the pool is on
        and more than one literal is in play, otherwise they evaluate
        serially with the empty-intersection short circuit.
        """
        x = self._x
        serial_upto = 0
        for part in parts:
            if not isinstance(part, ir.BoolQuery):
                break
            serial_upto += 1
        result: set[str] | None = None
        for part in parts[:serial_upto]:
            ids = self.eval_ids(part, run)
            result = ids if result is None else result & ids
        rest = parts[serial_upto:]

        def leaf_nodes(part: ir.PlanNode) -> tuple[ir.PlanNode, ...]:
            if isinstance(part, ir.SetOp) and part.op == "union":
                return part.parts
            return (part,)

        literal_count = sum(len(leaf_nodes(part)) for part in rest)
        pool = x._pool()
        if (pool is not None and x.pipeline.fanout_workers > 1
                and literal_count > 1):
            futures = [
                [pool.submit(self.eval_ids, leaf, run)
                 for leaf in leaf_nodes(part)]
                for part in rest
            ]
            for part_futures in futures:
                union: set[str] = set()
                for future in part_futures:
                    union |= future.result()
                result = union if result is None else result & union
            return result if result is not None else set()

        for part in rest:
            if result is not None and not result:
                return set()  # short-circuit: intersection already empty
            ids = self.eval_ids(part, run)
            result = ids if result is None else result & ids
        return result if result is not None else set()

    # -- the document pipeline -------------------------------------------------

    def _chunk_size(self, node: ir.FetchDocs, limit: int | None) -> int:
        if self._x.pipeline.fetch_chunk > 0:
            return self._x.pipeline.fetch_chunk
        if not node.ordered and limit is not None:
            # Seed `find` rule: a small limit keeps the transfer small.
            return max(limit * 2, 16)
        return node.chunk_default

    def _docs(self, node: ir.PlanNode, run: Run,
              limit: int | None) -> list[dict[str, Value]]:
        """Execute a Decrypt/Verify/Limit stack over a FetchDocs node."""
        verify = False
        has_limit = False
        while True:
            if isinstance(node, ir.Limit):
                has_limit = True
                node = node.source
            elif isinstance(node, ir.Verify):
                verify = True
                node = node.source
            elif isinstance(node, ir.Decrypt):
                node = node.source
            else:
                break
        if not isinstance(node, ir.FetchDocs):
            raise QueryError(
                f"document pipeline bottoms out at {node.kind}"
            )
        if not has_limit:
            limit = None
        if node.ordered:
            return self._ordered_docs(node, run, limit)
        return self._fetched_docs(node, run, limit, verify)

    def _fetched_docs(self, node: ir.FetchDocs, run: Run,
                      limit: int | None,
                      verify: bool) -> list[dict[str, Value]]:
        """The seed ``find`` loop: chunked get_many with prefetch overlap.

        The pending prefetch future is cancelled (or drained, when the
        pool already started it) on *every* exit path — early ``limit``
        returns included — so no orphaned fetch outlives the call.
        """
        x = self._x
        candidate_ids = sorted(self.eval_ids(node.source, run))
        chunk_size = self._chunk_size(node, limit)
        scope = x.cache_read_scope()
        if scope is not None:
            return self._cached_fetch(scope, candidate_ids, chunk_size,
                                      run, limit, verify)
        chunks = [
            candidate_ids[offset:offset + chunk_size]
            for offset in range(0, len(candidate_ids), chunk_size)
        ]
        pool = x._pool() if x.pipeline.prefetch else None

        def fetch(chunk: list[str]) -> list[dict]:
            return self._timed_docs(
                "get_many", "FetchDocs", "get_many", doc_ids=chunk
            )

        documents: list[dict[str, Value]] = []
        pending: Future | None = None
        try:
            if pool is not None and chunks:
                pending = pool.submit(fetch, chunks[0])
            for index, chunk in enumerate(chunks):
                if pending is not None:
                    stored = pending.result()
                    # Overlap the next wire fetch with this chunk's
                    # decryption and verification.
                    pending = (
                        pool.submit(fetch, chunks[index + 1])
                        if index + 1 < len(chunks) else None
                    )
                else:
                    stored = fetch(chunk)
                for item in stored:
                    if item.get("schema") != x.schema.name:
                        continue
                    document = x._decrypt_stored(item)
                    if verify and run.predicate is not None and (
                        not evaluate_plain(run.predicate, document)
                    ):
                        continue
                    documents.append(document)
                    if limit is not None and len(documents) >= limit:
                        return documents
            return documents
        finally:
            if pending is not None and not pending.cancel():
                try:
                    pending.result()
                except Exception:
                    pass  # the result is discarded either way

    def _cached_fetch(self, scope, candidate_ids: list[str],
                      chunk_size: int, run: Run, limit: int | None,
                      verify: bool) -> list[dict[str, Value]]:
        """The fetch loop over the document cache.

        Cached candidates (positive and negative) skip the wire; the
        missing ids fetch chunk-by-chunk as the sorted scan reaches
        them, so an early ``limit`` return stops fetching exactly like
        the seed loop.  When every candidate hits, no ``get_many``
        leaves the gateway at all — the whole answer is one coherence
        validation.  Output is sorted-id order (the order the seed
        produces whenever the store preserves request order).
        """
        from repro.cache.tier import MISS, NEGATIVE

        x = self._x
        missing: list[str] = []
        hits: dict[str, Any] = {}
        for doc_id in candidate_ids:
            found = scope.lookup(doc_id)
            if found is MISS:
                missing.append(doc_id)
            else:
                hits[doc_id] = found
        fetched: dict[str, dict | None] = {}
        fetch_offset = 0

        def fetch_until(doc_id: str) -> None:
            nonlocal fetch_offset
            while doc_id not in fetched and fetch_offset < len(missing):
                chunk = missing[fetch_offset:fetch_offset + chunk_size]
                fetch_offset += chunk_size
                stored = self._timed_docs(
                    "get_many", "FetchDocs", "get_many", doc_ids=chunk
                )
                by_id = {item["_id"]: item for item in stored}
                for wanted in chunk:
                    item = by_id.get(wanted)
                    if item is None or (
                        item.get("schema") != x.schema.name
                    ):
                        scope.store_negative(wanted)
                        fetched[wanted] = None
                        continue
                    document = x._decrypt_stored(item)
                    scope.store(wanted, document)
                    fetched[wanted] = document

        documents: list[dict[str, Value]] = []
        for doc_id in candidate_ids:
            found = hits.get(doc_id, MISS)
            if found is NEGATIVE:
                continue
            if found is MISS:
                fetch_until(doc_id)
                document = fetched.get(doc_id)
                if document is None:
                    continue
            else:
                document = found
            if verify and run.predicate is not None and (
                not evaluate_plain(run.predicate, document)
            ):
                continue
            documents.append(document)
            if limit is not None and len(documents) >= limit:
                return documents
        return documents

    def _ordered_docs(self, node: ir.FetchDocs, run: Run,
                      limit: int | None) -> list[dict[str, Value]]:
        """The seed ``find_sorted`` loop over the order index."""
        x = self._x
        scan = node.source
        if not isinstance(scan, ir.OrderedScan):
            raise QueryError("ordered fetch requires an OrderedScan source")
        instance = x.lookup_instance(scan.field, scan.role, scan.tactic)
        started = time.perf_counter()
        ordered = instance.ordered_ids(descending=scan.descending)
        self._observe(
            f"{x.schema.name}.{scan.field}", "ordered", scan.tactic,
            time.perf_counter() - started, "OrderedScan",
        )
        chunk_size = self._chunk_size(node, None)
        results: list[dict[str, Value]] = []
        offset = 0
        while offset < len(ordered) and (limit is None
                                         or len(results) < limit):
            chunk = ordered[offset:offset + chunk_size]
            offset += chunk_size
            stored = self._timed_docs(
                "get_many", "FetchDocs", "get_many", doc_ids=chunk
            )
            by_id = {item["_id"]: item for item in stored}
            for doc_id in chunk:
                item = by_id.get(doc_id)
                if item is None or item.get("schema") != x.schema.name:
                    continue
                results.append(x._decrypt_stored(item))
                if limit is not None and len(results) >= limit:
                    break
        return results

    # -- read entry points -----------------------------------------------------

    def find(self, plan: ir.Plan, run: Run,
             limit: int | None) -> list[dict[str, Value]]:
        return self._docs(plan.root, run, limit)

    def find_ids(self, plan: ir.Plan, run: Run) -> set[str]:
        return self.eval_ids(plan.root, run)

    def count(self, plan: ir.Plan, run: Run) -> int:
        root = plan.root
        if isinstance(root, ir.StoreCount):
            return self._timed_docs(
                "count", "StoreCount", "count",
                query={"schema": self._x.schema.name},
            )
        if isinstance(root, ir.Count):
            source = root.source
            if isinstance(source, (ir.Decrypt, ir.Verify, ir.FetchDocs)):
                return len(self._docs(source, run, limit=None))
            return len(self.eval_ids(source, run))
        raise QueryError(f"count plan bottoms out at {root.kind}")

    def aggregate(self, plan: ir.Plan, run: Run) -> Value:
        root = plan.root
        if isinstance(root, ir.Extreme):
            return self._extreme(root, run)
        if isinstance(root, ir.CloudAggregate):
            return self._cloud_aggregate(root, run)
        # Aggregate COUNT without a counting tactic degrades to count().
        return self.count(plan, run)

    def _cloud_aggregate(self, node: ir.CloudAggregate, run: Run) -> Value:
        x = self._x
        doc_ids = sorted(self.eval_ids(node.source, run))
        instance = x.lookup_instance(node.field, node.role, node.tactic)
        started = time.perf_counter()
        result = instance.aggregate(node.function, doc_ids)
        self._observe(
            f"{x.schema.name}.{node.field}", "aggregate", node.tactic,
            time.perf_counter() - started, "CloudAggregate",
        )
        return result

    def _extreme(self, node: ir.Extreme, run: Run) -> Value:
        """Min/max off the order tactic's sorted index (seed loop).

        Candidates stream in value order; each is fetched, decrypted and
        verified (stale upsert entries or a filter predicate may discard
        the head of the list), and the first surviving value wins.
        """
        x = self._x
        instance = x.lookup_instance(node.field, node.role, node.tactic)
        allowed: set[str] | None = None
        if node.filter is not None:
            allowed = self.eval_ids(node.filter, run)
            if not allowed:
                return None
        descending = node.function == "max"
        started = time.perf_counter()
        ordered = instance.ordered_ids(descending=descending)
        self._observe(
            f"{x.schema.name}.{node.field}", "ordered", node.tactic,
            time.perf_counter() - started, "Extreme",
        )
        batch = (
            x.pipeline.fetch_chunk if x.pipeline.fetch_chunk > 0 else 16
        )
        offset = 0
        while offset < len(ordered):
            chunk = ordered[offset:offset + batch]
            offset += batch
            candidates = [
                doc_id for doc_id in chunk
                if allowed is None or doc_id in allowed
            ]
            if not candidates:
                continue
            stored = self._timed_docs(
                "get_many", "FetchDocs", "get_many", doc_ids=candidates
            )
            by_id = {item["_id"]: item for item in stored}
            for doc_id in candidates:
                item = by_id.get(doc_id)
                if item is None or item.get("schema") != x.schema.name:
                    continue
                document = x._decrypt_stored(item)
                value = document.get(node.field)
                if value is None:
                    continue
                # The index is insert-as-upsert, so live documents are
                # current; deleted ones were skipped by get_many above.
                return value
        return None

    # -- async read path ---------------------------------------------------------
    #
    # The same plan IR executed with event-loop concurrency: CNF literal
    # fan-out and chunk prefetch become asyncio tasks instead of pool
    # futures, and blocking leaf work (tactic crypto, wire calls through
    # sync-only layers) rides ``asyncio.to_thread`` — which copies the
    # operation's context, so batch scopes and shard-timing sinks follow.
    # Node order, merge order and verification are byte-identical to the
    # sync path.

    async def find_async(self, plan: ir.Plan, run: Run,
                         limit: int | None) -> list[dict[str, Value]]:
        return await self._docs_async(plan.root, run, limit)

    async def find_ids_async(self, plan: ir.Plan, run: Run) -> set[str]:
        return await self.eval_ids_async(plan.root, run)

    async def count_async(self, plan: ir.Plan, run: Run) -> int:
        root = plan.root
        if isinstance(root, ir.StoreCount):
            return await asyncio.to_thread(self.count, plan, run)
        if isinstance(root, ir.Count):
            source = root.source
            if isinstance(source, (ir.Decrypt, ir.Verify, ir.FetchDocs)):
                return len(await self._docs_async(source, run, None))
            return len(await self.eval_ids_async(source, run))
        raise QueryError(f"count plan bottoms out at {root.kind}")

    async def aggregate_async(self, plan: ir.Plan, run: Run) -> Value:
        root = plan.root
        if isinstance(root, (ir.Extreme, ir.CloudAggregate)):
            # Both stream candidates sequentially; one worker hop keeps
            # the loop free without changing the scan order.
            return await asyncio.to_thread(self.aggregate, plan, run)
        return await self.count_async(plan, run)

    async def eval_ids_async(self, node: ir.PlanNode,
                             run: Run) -> set[str]:
        if isinstance(node, ir.SetOp):
            if node.op == "union":
                union: set[str] = set()
                for part in node.parts:
                    union |= await self.eval_ids_async(part, run)
                return union
            if node.op == "diff":
                base = await self.eval_ids_async(node.parts[0], run)
                return base - await self.eval_ids_async(node.parts[1],
                                                        run)
            return await self._intersect_ids_async(node.parts, run)
        if isinstance(node, ir.ProjectIds):
            return {
                document["_id"]
                for document in await self._docs_async(node.source, run,
                                                       None)
            }
        # Leaf nodes (AllIds / IndexLookup / BoolQuery) are one blocking
        # tactic round each: run them off-loop.
        return await asyncio.to_thread(self.eval_ids, node, run)

    async def _intersect_ids_async(self, parts: tuple[ir.PlanNode, ...],
                                   run: Run) -> set[str]:
        """Async :meth:`_intersect_ids`: literal fan-out as loop tasks.

        Boolean clauses still resolve serially first; the remaining
        literals launch concurrently as tasks whenever more than one is
        in play (the event loop *is* the fan-out — no worker-count
        gate), otherwise the serial short-circuit path runs.  The
        ordered intersection produces the same set either way.
        """
        serial_upto = 0
        for part in parts:
            if not isinstance(part, ir.BoolQuery):
                break
            serial_upto += 1
        result: set[str] | None = None
        for part in parts[:serial_upto]:
            ids = await asyncio.to_thread(self.eval_ids, part, run)
            result = ids if result is None else result & ids
        rest = parts[serial_upto:]

        def leaf_nodes(part: ir.PlanNode) -> tuple[ir.PlanNode, ...]:
            if isinstance(part, ir.SetOp) and part.op == "union":
                return part.parts
            return (part,)

        literal_count = sum(len(leaf_nodes(part)) for part in rest)
        if literal_count > 1:
            tasks = [
                [asyncio.ensure_future(self.eval_ids_async(leaf, run))
                 for leaf in leaf_nodes(part)]
                for part in rest
            ]
            for part_tasks in tasks:
                union: set[str] = set()
                for task in part_tasks:
                    union |= await task
                result = union if result is None else result & union
            return result if result is not None else set()

        for part in rest:
            if result is not None and not result:
                return set()
            ids = await self.eval_ids_async(part, run)
            result = ids if result is None else result & ids
        return result if result is not None else set()

    async def _docs_async(self, node: ir.PlanNode, run: Run,
                          limit: int | None) -> list[dict[str, Value]]:
        verify = False
        has_limit = False
        while True:
            if isinstance(node, ir.Limit):
                has_limit = True
                node = node.source
            elif isinstance(node, ir.Verify):
                verify = True
                node = node.source
            elif isinstance(node, ir.Decrypt):
                node = node.source
            else:
                break
        if not isinstance(node, ir.FetchDocs):
            raise QueryError(
                f"document pipeline bottoms out at {node.kind}"
            )
        if not has_limit:
            limit = None
        if node.ordered:
            return await asyncio.to_thread(self._ordered_docs, node, run,
                                           limit)
        scope = self._x.cache_read_scope()
        if scope is not None:
            candidate_ids = sorted(
                await self.eval_ids_async(node.source, run)
            )
            chunk_size = self._chunk_size(node, limit)
            # The cached loop blocks on validation and miss fetches;
            # one worker hop keeps the event loop free.
            return await asyncio.to_thread(
                self._cached_fetch, scope, candidate_ids, chunk_size,
                run, limit, verify,
            )
        return await self._fetched_docs_async(node, run, limit, verify)

    async def _fetched_docs_async(
        self, node: ir.FetchDocs, run: Run, limit: int | None,
        verify: bool,
    ) -> list[dict[str, Value]]:
        """Chunked get_many where the prefetch is an asyncio task.

        Chunk N+1's wire fetch runs as a task while chunk N decrypts and
        verifies on a worker thread; the pending task is cancelled (or
        awaited out when already running) on every exit path, early
        ``limit`` returns included — the same no-orphaned-fetch contract
        as the sync loop.
        """
        x = self._x
        candidate_ids = sorted(await self.eval_ids_async(node.source,
                                                         run))
        chunk_size = self._chunk_size(node, limit)
        chunks = [
            candidate_ids[offset:offset + chunk_size]
            for offset in range(0, len(candidate_ids), chunk_size)
        ]

        def fetch(chunk: list[str]) -> list[dict]:
            return self._timed_docs(
                "get_many", "FetchDocs", "get_many", doc_ids=chunk
            )

        def process(stored: list[dict]) -> list[dict[str, Value]]:
            kept: list[dict[str, Value]] = []
            for item in stored:
                if item.get("schema") != x.schema.name:
                    continue
                document = x._decrypt_stored(item)
                if verify and run.predicate is not None and (
                    not evaluate_plain(run.predicate, document)
                ):
                    continue
                kept.append(document)
            return kept

        documents: list[dict[str, Value]] = []
        pending: asyncio.Task | None = None
        try:
            if x.pipeline.prefetch and chunks:
                pending = asyncio.ensure_future(
                    asyncio.to_thread(fetch, chunks[0])
                )
            for index, chunk in enumerate(chunks):
                if pending is not None:
                    stored = await pending
                    pending = (
                        asyncio.ensure_future(
                            asyncio.to_thread(fetch, chunks[index + 1])
                        )
                        if index + 1 < len(chunks) else None
                    )
                else:
                    stored = await asyncio.to_thread(fetch, chunk)
                for document in await asyncio.to_thread(process, stored):
                    documents.append(document)
                    if limit is not None and len(documents) >= limit:
                        return documents
            return documents
        finally:
            if pending is not None:
                pending.cancel()
                try:
                    await pending
                except asyncio.CancelledError:
                    pass
                except Exception:
                    pass  # the result is discarded either way

    # -- async write path --------------------------------------------------------

    async def insert_bulk_async(self, plan: ir.Plan,
                                documents: list[dict[str, Value]]
                                ) -> list[str]:
        """Bulk insert with the wire flush awaited on the event loop.

        Crypto and frame collection run off-loop under an outer
        collection scope (the inner scope the sync path opens joins it,
        so nothing ships from the worker); the drained frame then
        crosses the wire via :meth:`BatchCollector.ship_async`, where
        the WAN wait holds a loop task instead of a thread.  Without a
        collector the whole sync path runs on a worker unchanged.
        """
        x = self._x
        collector = x._collector
        if collector is None:
            return await asyncio.to_thread(self.insert_bulk, plan,
                                           documents)

        def prepare() -> tuple[list[str], list]:
            with collector.collect():
                doc_ids = self.insert_bulk(plan, documents)
                frame = collector.drain_pending()
            return doc_ids, frame

        doc_ids, frame = await asyncio.to_thread(prepare)
        if frame:
            await collector.ship_async(frame)
            # The write is only now durable on the cloud: re-invalidate
            # so a read that raced the in-flight frame cannot have
            # re-cached the pre-write version.
            self._note_local_write(doc_ids)
        return doc_ids

    async def update_async(self, plan: ir.Plan, doc_id: str,
                           changes: dict[str, Value]) -> None:
        await asyncio.to_thread(self.update, plan, doc_id, changes)

    async def delete_async(self, plan: ir.Plan, doc_id: str) -> bool:
        return await asyncio.to_thread(self.delete, plan, doc_id)

    # -- write entry points ----------------------------------------------------

    def _note_local_write(self, doc_ids: list[str]) -> None:
        """Read-your-writes invalidation into the cache tier (no-op
        without one): bump the schema's write version and drop the
        written ids' document entries, negatives included."""
        tier = self._x.runtime.cache_tier
        if tier is not None:
            tier.note_local_write(self._x.schema.name, doc_ids)

    def insert_bulk(self, plan: ir.Plan,
                    documents: list[dict[str, Value]]) -> list[str]:
        """The seed bulk-insert loop over the write-instance set.

        Under a write batch, every per-field index RPC *and* the final
        document-store write leave the gateway in a single batch frame.
        With active crypto kernels the loop is restructured field-major
        through the tactic batch SPI instead (see
        :meth:`_insert_bulk_kernel`); the default config keeps this
        exact seed path.
        """
        x = self._x
        if x.runtime.crypto.active:
            return self._insert_bulk_kernel(documents)
        started = time.perf_counter()
        stored = []
        doc_ids = []
        with x._write_batch():
            for document in documents:
                x.schema.validate(document)
                doc_id = document.get("_id") or x._generate_doc_id()
                sensitive, plain = x._split_document(document)
                bool_terms: list[bytes] = []
                for field, value in sensitive.items():
                    if value is None:
                        continue
                    for instance in x.write_instances(field):
                        if instance is x._bool_instance:
                            bool_terms.append(instance.term(field, value))
                        elif isinstance(instance, GatewayInsertion):
                            instance.insert(doc_id, value)
                if bool_terms and x._bool_instance is not None:
                    x._bool_instance.insert_terms(doc_id, bool_terms)
                stored.append({
                    "_id": doc_id,
                    "schema": x.schema.name,
                    "body": x._seal_body(sensitive),
                    "plain": plain,
                })
                doc_ids.append(doc_id)
            if stored:
                x.runtime.docs("insert_many", documents=stored)
        self._stats.record_node(
            "WritePipeline:insert", time.perf_counter() - started
        )
        self._drain_shard_timings()
        self._note_local_write(doc_ids)
        return doc_ids

    def _insert_bulk_kernel(
        self, documents: list[dict[str, Value]]
    ) -> list[str]:
        """Field-major bulk insert through the tactic batch SPI.

        Phase 1 (crypto): validate and split every document, *begin*
        every field's index batch — pooled big-int batches start
        progressing immediately while the inline fields (DET dedup, OPE
        memo walks) compute — and seal the document bodies.  Phase 2
        (wire): finish each batch into one write-batch frame and flush.
        The two phases land in separate ``Crypto:insert`` /
        ``Wire:insert`` stat rows, with per-kernel breakdown rows drained
        from the executor, so ``explain()`` shows where a bulk write
        spends its time.

        Index RPCs leave field-major instead of the seed's doc-major
        order; the batch collector coalesces both into a single frame,
        and no tactic orders its index entries by arrival.
        """
        x = self._x
        started = time.perf_counter()
        chunk = x.pipeline.write_chunk
        if (chunk > 0 and len(documents) > chunk
                and x._collector is not None
                and not x._collector.in_scope()
                and x._pool() is not None):
            return self._insert_bulk_pipelined(documents, started)
        doc_ids, finishers, doc_bool_terms, stored = \
            self._prepare_insert_chunk(documents)
        crypto_elapsed = time.perf_counter() - started

        wire_started = time.perf_counter()
        with x._write_batch():
            self._finish_insert_chunk(finishers, doc_bool_terms, stored)
        wire_elapsed = time.perf_counter() - wire_started

        self._stats.record_node("Crypto:insert", crypto_elapsed)
        self._stats.record_node("Wire:insert", wire_elapsed)
        for name, seconds in x.runtime.kernels.drain_timings():
            self._stats.record_node(f"Crypto:{name}", seconds)
        self._stats.record_node(
            "WritePipeline:insert", time.perf_counter() - started
        )
        self._drain_shard_timings()
        self._note_local_write(doc_ids)
        return doc_ids

    def _prepare_insert_chunk(
        self, documents: list[dict[str, Value]]
    ) -> tuple[list[str], list[Any],
               list[tuple[str, list[bytes]]], list[dict]]:
        """Crypto phase of one bulk-insert chunk: validate and split the
        documents, begin every field's index batch (pooled big-int work
        starts progressing immediately) and seal the bodies."""
        x = self._x
        prepared: list[tuple[str, dict[str, Value], dict[str, Value]]] = []
        for document in documents:
            x.schema.validate(document)
            doc_id = document.get("_id") or x._generate_doc_id()
            sensitive, plain = x._split_document(document)
            prepared.append((doc_id, sensitive, plain))

        field_entries: dict[str, list[tuple[str, Value]]] = {}
        for doc_id, sensitive, _ in prepared:
            for field, value in sensitive.items():
                if value is not None:
                    field_entries.setdefault(field, []).append(
                        (doc_id, value)
                    )

        finishers = []
        bool_fields: set[str] = set()
        for field, entries in field_entries.items():
            for instance in x.write_instances(field):
                if instance is x._bool_instance:
                    bool_fields.add(field)
                elif isinstance(instance, GatewayInsertion):
                    finishers.append(instance.index_many_begin(entries))
        doc_bool_terms: list[tuple[str, list[bytes]]] = []
        if x._bool_instance is not None and bool_fields:
            for doc_id, sensitive, _ in prepared:
                terms = [
                    x._bool_instance.term(field, value)
                    for field, value in sensitive.items()
                    if value is not None and field in bool_fields
                ]
                if terms:
                    doc_bool_terms.append((doc_id, terms))
        stored = [
            {
                "_id": doc_id,
                "schema": x.schema.name,
                "body": x._seal_body(sensitive),
                "plain": plain,
            }
            for doc_id, sensitive, plain in prepared
        ]
        return ([doc_id for doc_id, _, _ in prepared], finishers,
                doc_bool_terms, stored)

    def _finish_insert_chunk(self, finishers: list[Any],
                             doc_bool_terms: list[tuple[str, list[bytes]]],
                             stored: list[dict]) -> None:
        """Emit one prepared chunk's RPCs (inside a write-batch scope)."""
        x = self._x
        for finish in finishers:
            finish()
        for doc_id, terms in doc_bool_terms:
            x._bool_instance.insert_terms(doc_id, terms)
        if stored:
            x.runtime.docs("insert_many", documents=stored)

    def _insert_bulk_pipelined(self, documents: list[dict[str, Value]],
                               started: float) -> list[str]:
        """Chunked bulk insert with crypto/wire overlap.

        Chunk N's batch frame crosses the wire on the fan-out pool (and,
        sharded, scatters per shard there) while the main thread runs
        chunk N+1's crypto kernels *and* finishers — finishers mutate
        gateway-side tactic state (Sophos counters, SSE tokens), so they
        stay on this thread; only the drained frame travels to the pool.
        At most one frame is airborne: the previous ship is reaped
        before the next is submitted, keeping per-shard write order
        exactly chunk order.  ``Crypto:insert`` and ``Wire:insert`` both
        approach the operation's wall clock when the pipeline is
        balanced — their sum exceeding ``WritePipeline:insert`` is the
        visible signature of the overlap in ``explain()``.
        """
        x = self._x
        collector = x._collector
        pool = x._pool()
        chunk_size = x.pipeline.write_chunk
        crypto_total = 0.0
        wire_total = 0.0
        doc_ids: list[str] = []
        inflight = None

        def ship(frame: list) -> tuple[float, list[tuple[str, float]]]:
            shipped = time.perf_counter()
            collector.ship(frame)
            return (time.perf_counter() - shipped,
                    collector.drain_shard_timings())

        def reap(future) -> None:
            nonlocal wire_total
            elapsed, rows = future.result()
            wire_total += elapsed
            for name, seconds in rows:
                self._stats.record_node(f"Shard:{name}", seconds)

        try:
            for offset in range(0, len(documents), chunk_size):
                chunk = documents[offset:offset + chunk_size]
                crypto_started = time.perf_counter()
                ids, finishers, doc_bool_terms, stored = \
                    self._prepare_insert_chunk(chunk)
                with collector.collect():
                    self._finish_insert_chunk(finishers, doc_bool_terms,
                                              stored)
                    frame = collector.drain_pending()
                crypto_total += time.perf_counter() - crypto_started
                doc_ids.extend(ids)
                if inflight is not None:
                    reap(inflight)
                    inflight = None
                if frame:
                    inflight = pool.submit(ship, frame)
        finally:
            if inflight is not None:
                reap(inflight)

        self._stats.record_node("Crypto:insert", crypto_total)
        self._stats.record_node("Wire:insert", wire_total)
        for name, seconds in x.runtime.kernels.drain_timings():
            self._stats.record_node(f"Crypto:{name}", seconds)
        self._stats.record_node(
            "WritePipeline:insert", time.perf_counter() - started
        )
        self._drain_shard_timings()
        self._note_local_write(doc_ids)
        return doc_ids

    def update(self, plan: ir.Plan, doc_id: str,
               changes: dict[str, Value]) -> None:
        x = self._x
        started = time.perf_counter()
        # Read-modify-write must see the authoritative stored version,
        # so the fetch bypasses the document cache.
        old = x.get_uncached(doc_id)
        new = {k: v for k, v in old.items() if k != "_id"}
        new.update({k: v for k, v in changes.items() if k != "_id"})
        x.schema.validate(new)

        old_sensitive, _ = x._split_document(old)
        new_sensitive, new_plain = x._split_document(new)

        with x._write_batch():
            self._apply_update(doc_id, old_sensitive, new_sensitive,
                               new_plain)
        self._stats.record_node(
            "WritePipeline:update", time.perf_counter() - started
        )
        self._drain_shard_timings()
        self._note_local_write([doc_id])

    def _apply_update(self, doc_id: str,
                      old_sensitive: dict[str, Value],
                      new_sensitive: dict[str, Value],
                      new_plain: dict[str, Value]) -> None:
        x = self._x
        bool_changed = False
        for field in set(old_sensitive) | set(new_sensitive):
            old_value = old_sensitive.get(field)
            new_value = new_sensitive.get(field)
            if old_value == new_value:
                continue
            for instance in x.write_instances(field):
                if instance is x._bool_instance:
                    bool_changed = True
                elif isinstance(instance, GatewayUpdate) and (
                    old_value is not None and new_value is not None
                ):
                    instance.update(doc_id, old_value, new_value)
                elif new_value is not None and isinstance(
                    instance, GatewayInsertion
                ):
                    if old_value is not None and isinstance(
                        instance, GatewayDeletion
                    ):
                        instance.delete(doc_id, old_value)
                    instance.insert(doc_id, new_value)
                elif new_value is None and old_value is not None and (
                    isinstance(instance, GatewayDeletion)
                ):
                    instance.delete(doc_id, old_value)
        if bool_changed and x._bool_instance is not None:
            x._bool_instance.update_terms(
                doc_id,
                x._bool_terms(old_sensitive),
                x._bool_terms(new_sensitive),
            )
        x.runtime.docs("replace", document={
            "_id": doc_id,
            "schema": x.schema.name,
            "body": x._seal_body(new_sensitive),
            "plain": new_plain,
        })

    def delete(self, plan: ir.Plan, doc_id: str) -> bool:
        x = self._x
        started = time.perf_counter()
        try:
            # Authoritative read: index deletion must remove exactly the
            # stored values, never a cached approximation.
            old = x.get_uncached(doc_id)
        except (DocumentNotFound, RemoteError):
            return False
        old_sensitive, _ = x._split_document(old)
        try:
            with x._write_batch():
                for field, value in old_sensitive.items():
                    if value is None:
                        continue
                    for instance in x.write_instances(field):
                        if instance is x._bool_instance:
                            continue
                        if isinstance(instance, GatewayDeletion):
                            instance.delete(doc_id, value)
                if x._bool_instance is not None:
                    terms = x._bool_terms(old_sensitive)
                    if terms:
                        x._bool_instance.delete_terms(doc_id, terms)
                # The document-store delete needs its result, so under a
                # write batch it rides as the batch's final element (the
                # collector flushes and hands its result back).
                deleted = bool(x.runtime.docs("delete", doc_id=doc_id))
                if deleted:
                    self._note_local_write([doc_id])
                return deleted
        finally:
            self._stats.record_node(
                "WritePipeline:delete", time.perf_counter() - started
            )
            self._drain_shard_timings()
