"""QueryPlanner: the compile -> optimize -> execute façade.

One planner per :class:`~repro.core.executor.SchemaExecutor`.  It owns
the plan cache — optimized plans keyed by ``(operation, predicate
shape, flags)``, where the shape comes from
:func:`~repro.core.planner.compile.parameterize` — and the
:class:`PlannerStats` counters the acceptance tests and
``DataBlinder.planner_report`` read.  The cache is pure gateway-side
memoisation: values are bound at execution time, so a hit performs the
same RPCs a fresh compile would.  ``migrate_schema`` invalidates it
(the new executor starts with an empty cache and carries the counter
forward).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.core.planner.compile import PlanCompiler, parameterize
from repro.core.planner.cost import CostModel
from repro.core.planner.engine import PlanEngine, Run
from repro.core.planner.ir import Plan
from repro.core.planner.optimize import PlanOptimizer
from repro.core.query import AggregateQuery, Predicate
from repro.crypto.encoding import Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executor import SchemaExecutor


class PlannerStats:
    """Thread-safe planner counters and per-node-kind timings."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.compiles = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.invalidations = 0
        #: Cache drops caused by an untrusted-zone membership change
        #: (the transport's topology epoch moved).
        self.topology_invalidations = 0
        self.executions = 0
        #: Search-result cache traffic (only counted when the cache
        #: tier's result level is on): validated hits vs executions
        #: that went to the engine.
        self.result_hits = 0
        self.result_misses = 0
        #: node-kind (e.g. ``"IndexLookup:det"``) -> [calls, seconds]
        self.node_timings: dict[str, list] = {}
        #: ``"<field>.<role>"`` -> tactic chosen at the last execution.
        self.chosen: dict[str, str] = {}

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def record_node(self, kind: str, seconds: float) -> None:
        with self._lock:
            entry = self.node_timings.setdefault(kind, [0, 0.0])
            entry[0] += 1
            entry[1] += seconds

    def record_choice(self, field: str, role: str, tactic: str) -> None:
        with self._lock:
            self.chosen[f"{field}.{role}"] = tactic

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "compiles": self.compiles,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "invalidations": self.invalidations,
                "topology_invalidations": self.topology_invalidations,
                "executions": self.executions,
                "result_hits": self.result_hits,
                "result_misses": self.result_misses,
                "node_timings": {
                    kind: {"calls": calls, "seconds": seconds}
                    for kind, (calls, seconds) in sorted(
                        self.node_timings.items()
                    )
                },
                "chosen": dict(self.chosen),
            }

    def render(self) -> str:
        snap = self.snapshot()
        lines = [
            "Query planner statistics",
            (
                f"  plans: {snap['compiles']} compiled, "
                f"{snap['cache_hits']} cache hits, "
                f"{snap['cache_misses']} misses, "
                f"{snap['invalidations']} invalidations "
                f"({snap['topology_invalidations']} topology)"
            ),
            f"  executions: {snap['executions']}",
        ]
        if snap["result_hits"] or snap["result_misses"]:
            lines.append(
                f"  result cache: {snap['result_hits']} hits, "
                f"{snap['result_misses']} misses"
            )
        if snap["node_timings"]:
            lines.append("  node timings:")
            for kind, cost in snap["node_timings"].items():
                mean_ms = (
                    1000.0 * cost["seconds"] / cost["calls"]
                    if cost["calls"] else 0.0
                )
                lines.append(
                    f"    {kind:<24}{cost['calls']:>7} calls"
                    f"{mean_ms:>10.2f} ms mean"
                )
        if snap["chosen"]:
            lines.append("  lookup tactics (last execution):")
            for key in sorted(snap["chosen"]):
                lines.append(f"    {key} -> {snap['chosen'][key]}")
        return "\n".join(lines)


class QueryPlanner:
    """Plans, caches and executes one executor's operations."""

    def __init__(self, executor: "SchemaExecutor"):
        self._x = executor
        self.cost_model = CostModel(executor)
        self.compiler = PlanCompiler(executor)
        self.optimizer = PlanOptimizer(executor, self.cost_model)
        self.stats = PlannerStats()
        self.engine = PlanEngine(executor, self.stats)
        self._cache: dict[Any, Plan] = {}
        self._lock = threading.Lock()
        self._epoch = executor.runtime.topology_epoch()

    # -- plan cache ------------------------------------------------------------

    def _check_topology(self) -> None:
        """Drop cached plans when the untrusted zone changed shape.

        Plans are shape-keyed, not topology-keyed: a plan compiled
        against a 2-node ring is structurally valid on 3 nodes, but its
        cost estimates and adaptive selections are stale — and tests
        want a crisp signal that membership changes were noticed.
        """
        epoch = self._x.runtime.topology_epoch()
        if epoch == self._epoch:
            return
        with self._lock:
            if epoch == self._epoch:
                return
            self._cache.clear()
            self._epoch = epoch
        self.stats.bump("topology_invalidations")
        self.stats.bump("invalidations")

    def _plan(self, key: Any, build) -> Plan:
        if not self._x.pipeline.plan_cache:
            self.stats.bump("compiles")
            return self.optimizer.optimize(build())
        self._check_topology()
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None:
            self.stats.bump("cache_hits")
            if self._x.pipeline.adaptive_selection:
                # A cache hit still tracks drifting latencies: re-run the
                # (cheap) selection rewrite against current EWMAs.
                refreshed = self.optimizer.reselect(cached)
                if refreshed is not cached:
                    with self._lock:
                        self._cache[key] = refreshed
                return refreshed
            return cached
        self.stats.bump("cache_misses")
        self.stats.bump("compiles")
        plan = self.optimizer.optimize(build())
        with self._lock:
            self._cache[key] = plan
        return plan

    def invalidate(self) -> None:
        """Drop every cached plan (schema migration / registry change)."""
        with self._lock:
            self._cache.clear()
        self.stats.bump("invalidations")

    def absorb(self, predecessor: "QueryPlanner") -> None:
        """Carry a migrated-away executor's counters into this planner."""
        predecessor.invalidate()
        snap = predecessor.stats.snapshot()
        self.stats.bump("invalidations", snap["invalidations"])
        self.stats.bump("topology_invalidations",
                        snap["topology_invalidations"])

    def cached_plans(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- search-result cache -----------------------------------------------------
    #
    # Composes with (not replaces) the plan cache: the plan cache skips
    # the compile, the result cache skips the whole engine execution.
    # Keys are the plan-cache key plus the bound parameter values (and
    # the actual limit, which the plan key only carries as a flag);
    # coherence validation lives in the tier.  ``plaintext`` marks
    # document-bearing results, which are subject to leakage admission;
    # id/count results always cache.

    def _cached_read(self, key: Any, extra: Any, plaintext: bool,
                     execute):
        tier = self._x.runtime.cache_tier
        if tier is None or tier.results is None:
            return execute()
        schema = self._x.schema.name
        hit = tier.result_lookup(schema, key, extra, plaintext)
        from repro.cache.tier import MISS

        if hit is not MISS:
            self.stats.bump("result_hits")
            return hit
        self.stats.bump("result_misses")
        fill_token = tier.result_fill_token(schema)
        result = execute()
        tier.result_store(schema, key, extra, result, fill_token,
                          plaintext)
        return result

    async def _cached_read_async(self, key: Any, extra: Any,
                                 plaintext: bool, execute):
        import asyncio

        tier = self._x.runtime.cache_tier
        if tier is None or tier.results is None:
            return await execute()
        schema = self._x.schema.name
        # Hit validation may force a ledger re-sync over the wire.
        hit = await asyncio.to_thread(
            tier.result_lookup, schema, key, extra, plaintext
        )
        from repro.cache.tier import MISS

        if hit is not MISS:
            self.stats.bump("result_hits")
            return hit
        self.stats.bump("result_misses")
        fill_token = tier.result_fill_token(schema)
        result = await execute()
        tier.result_store(schema, key, extra, result, fill_token,
                          plaintext)
        return result

    # -- operations ------------------------------------------------------------

    def find(self, predicate: Predicate | None, verify: bool | None,
             limit: int | None) -> list[dict[str, Value]]:
        verify = self._x.verify_results if verify is None else verify
        parameterized, values, shape = parameterize(predicate)
        key = ("find", shape, verify, limit is not None)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_find(
                parameterized, verify, limit is not None, len(values)
            ),
        )

        def execute() -> list[dict[str, Value]]:
            self.stats.bump("executions")
            return self.engine.find(plan, Run(values, predicate), limit)

        return self._cached_read(key, (limit, values), True, execute)

    def find_ids(self, predicate: Predicate | None,
                 verify: bool | None) -> set[str]:
        verify = self._x.verify_results if verify is None else verify
        parameterized, values, shape = parameterize(predicate)
        key = ("find_ids", shape, verify)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_find_ids(
                parameterized, verify, len(values)
            ),
        )

        def execute() -> set[str]:
            self.stats.bump("executions")
            return self.engine.find_ids(plan, Run(values, predicate))

        return self._cached_read(key, (values,), False, execute)

    def count(self, predicate: Predicate | None) -> int:
        parameterized, values, shape = parameterize(predicate)
        key = ("count", shape)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_count(parameterized, len(values)),
        )

        def execute() -> int:
            self.stats.bump("executions")
            return self.engine.count(plan, Run(values, predicate))

        return self._cached_read(key, (values,), False, execute)

    def aggregate(self, query: AggregateQuery) -> Value:
        parameterized, values, shape = parameterize(query.where)
        key = ("aggregate", query.function.value, query.field, shape)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_aggregate(
                query.function.value, query.field, parameterized,
                len(values),
            ),
        )

        def execute() -> Value:
            self.stats.bump("executions")
            return self.engine.aggregate(plan, Run(values, query.where))

        return self._cached_read(key, (values,), True, execute)

    def find_sorted(self, field: str, limit: int | None,
                    descending: bool) -> list[dict[str, Value]]:
        key = ("find_sorted", field, descending, limit is not None)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_find_sorted(
                field, descending, limit is not None
            ),
        )

        def execute() -> list[dict[str, Value]]:
            self.stats.bump("executions")
            return self.engine.find(plan, Run([], None), limit)

        return self._cached_read(key, (limit,), True, execute)

    def insert_bulk(self, documents: list[dict[str, Value]]) -> list[str]:
        plan = self._plan(
            ("write", "insert"),
            lambda: self.compiler.compile_write("insert"),
        )
        self.stats.bump("executions")
        return self.engine.insert_bulk(plan, documents)

    def update(self, doc_id: str, changes: dict[str, Value]) -> None:
        plan = self._plan(
            ("write", "update"),
            lambda: self.compiler.compile_write("update"),
        )
        self.stats.bump("executions")
        self.engine.update(plan, doc_id, changes)

    def delete(self, doc_id: str) -> bool:
        plan = self._plan(
            ("write", "delete"),
            lambda: self.compiler.compile_write("delete"),
        )
        self.stats.bump("executions")
        return self.engine.delete(plan, doc_id)

    # -- async operations --------------------------------------------------------
    #
    # The same compile/cache/execute pipeline with the engine's async
    # execution path.  Cache keys are identical to the sync entry
    # points, so both paths share one plan per shape and a plan warmed
    # by either is a hit for the other.

    async def find_async(self, predicate: Predicate | None,
                         verify: bool | None,
                         limit: int | None) -> list[dict[str, Value]]:
        verify = self._x.verify_results if verify is None else verify
        parameterized, values, shape = parameterize(predicate)
        key = ("find", shape, verify, limit is not None)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_find(
                parameterized, verify, limit is not None, len(values)
            ),
        )

        async def execute() -> list[dict[str, Value]]:
            self.stats.bump("executions")
            return await self.engine.find_async(
                plan, Run(values, predicate), limit
            )

        return await self._cached_read_async(key, (limit, values), True,
                                             execute)

    async def find_ids_async(self, predicate: Predicate | None,
                             verify: bool | None) -> set[str]:
        verify = self._x.verify_results if verify is None else verify
        parameterized, values, shape = parameterize(predicate)
        key = ("find_ids", shape, verify)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_find_ids(
                parameterized, verify, len(values)
            ),
        )

        async def execute() -> set[str]:
            self.stats.bump("executions")
            return await self.engine.find_ids_async(
                plan, Run(values, predicate)
            )

        return await self._cached_read_async(key, (values,), False,
                                             execute)

    async def count_async(self, predicate: Predicate | None) -> int:
        parameterized, values, shape = parameterize(predicate)
        key = ("count", shape)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_count(parameterized,
                                                len(values)),
        )

        async def execute() -> int:
            self.stats.bump("executions")
            return await self.engine.count_async(
                plan, Run(values, predicate)
            )

        return await self._cached_read_async(key, (values,), False,
                                             execute)

    async def aggregate_async(self, query: AggregateQuery) -> Value:
        parameterized, values, shape = parameterize(query.where)
        key = ("aggregate", query.function.value, query.field, shape)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_aggregate(
                query.function.value, query.field, parameterized,
                len(values),
            ),
        )

        async def execute() -> Value:
            self.stats.bump("executions")
            return await self.engine.aggregate_async(
                plan, Run(values, query.where)
            )

        return await self._cached_read_async(key, (values,), True,
                                             execute)

    async def find_sorted_async(self, field: str, limit: int | None,
                                descending: bool
                                ) -> list[dict[str, Value]]:
        key = ("find_sorted", field, descending, limit is not None)
        plan = self._plan(
            key,
            lambda: self.compiler.compile_find_sorted(
                field, descending, limit is not None
            ),
        )

        async def execute() -> list[dict[str, Value]]:
            self.stats.bump("executions")
            return await self.engine.find_async(plan, Run([], None),
                                                limit)

        return await self._cached_read_async(key, (limit,), True,
                                             execute)

    async def insert_bulk_async(
        self, documents: list[dict[str, Value]]
    ) -> list[str]:
        plan = self._plan(
            ("write", "insert"),
            lambda: self.compiler.compile_write("insert"),
        )
        self.stats.bump("executions")
        return await self.engine.insert_bulk_async(plan, documents)

    async def update_async(self, doc_id: str,
                           changes: dict[str, Value]) -> None:
        plan = self._plan(
            ("write", "update"),
            lambda: self.compiler.compile_write("update"),
        )
        self.stats.bump("executions")
        await self.engine.update_async(plan, doc_id, changes)

    async def delete_async(self, doc_id: str) -> bool:
        plan = self._plan(
            ("write", "delete"),
            lambda: self.compiler.compile_write("delete"),
        )
        self.stats.bump("executions")
        return await self.engine.delete_async(plan, doc_id)

    # -- EXPLAIN ---------------------------------------------------------------

    def explain_plan(self, operation: str = "find",
                     predicate: Predicate | None = None,
                     verify: bool | None = None,
                     limit: int | None = None,
                     field: str | None = None,
                     function: str | None = None,
                     descending: bool = False) -> Plan:
        """Compile + optimize without executing, caching, or counting.

        EXPLAIN deliberately bypasses the cache in both directions: it
        never warms it (a later query still records its true miss) and
        never reads it (the rendered plan reflects the current compiler
        output and cost estimates).
        """
        verify = self._x.verify_results if verify is None else verify
        parameterized, values, _ = parameterize(predicate)
        if operation == "find":
            plan = self.compiler.compile_find(
                parameterized, verify, limit is not None, len(values)
            )
        elif operation == "find_ids":
            plan = self.compiler.compile_find_ids(
                parameterized, verify, len(values)
            )
        elif operation == "count":
            plan = self.compiler.compile_count(parameterized, len(values))
        elif operation == "aggregate":
            if function is None or field is None:
                raise ValueError(
                    "aggregate explain needs function= and field="
                )
            plan = self.compiler.compile_aggregate(
                function, field, parameterized, len(values)
            )
        elif operation == "find_sorted":
            if field is None:
                raise ValueError("find_sorted explain needs field=")
            plan = self.compiler.compile_find_sorted(
                field, descending, limit is not None
            )
        elif operation in ("insert", "update", "delete"):
            plan = self.compiler.compile_write(operation)
        else:
            raise ValueError(f"cannot explain operation {operation!r}")
        return self.optimizer.optimize(plan)

    def _operation_key(self, operation: str = "find",
                       predicate: Predicate | None = None,
                       verify: bool | None = None,
                       limit: int | None = None,
                       field: str | None = None,
                       function: str | None = None,
                       descending: bool = False) -> Any:
        """The plan-cache key the live entry point would use — lets
        EXPLAIN surface the result cache's learned hit probability for
        the same shape without touching either cache.  ``None`` for
        writes (never result-cached)."""
        verify = self._x.verify_results if verify is None else verify
        _, _, shape = parameterize(predicate)
        if operation == "find":
            return ("find", shape, verify, limit is not None)
        if operation == "find_ids":
            return ("find_ids", shape, verify)
        if operation == "count":
            return ("count", shape)
        if operation == "aggregate":
            return ("aggregate", function, field, shape)
        if operation == "find_sorted":
            return ("find_sorted", field, descending, limit is not None)
        return None

    def explain(self, **kwargs: Any) -> str:
        from repro.analysis.planview import render_plan

        return render_plan(self.explain_plan(**kwargs), self,
                           plan_key=self._operation_key(**kwargs))
