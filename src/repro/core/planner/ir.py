"""The plan IR: an immutable operator DAG over protected indexes.

Arasu & Kaushik's oblivious query processing and Vaswani et al.'s
information-flow analysis both model encrypted query execution as an
explicit operator plan; this module is that shape for DataBlinder.  A
plan is a tree of frozen dataclass nodes.  Id-producing nodes
(``IndexLookup``, ``BoolQuery``, ``SetOp``, ``AllIds``, ``OrderedScan``)
feed the document pipeline (``FetchDocs`` -> ``Decrypt`` -> ``Verify``
-> ``Limit``/``ProjectIds``/``Count``) or a terminal computation
(``Extreme``, ``CloudAggregate``).  Write operations compile to a
``WritePipeline`` of stage nodes.

Predicate *values* never appear in a plan: the compiler replaces each
literal value with a :class:`Param` slot, so a plan is reusable for
every predicate of the same shape — the property the plan cache relies
on — and so a cached plan never pins sensitive plaintext in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Param:
    """A slot in a plan's binding vector (a parameterized literal value)."""

    index: int


class PlanNode:
    """Base class of all plan operators."""

    @property
    def kind(self) -> str:
        return type(self).__name__

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def detail(self) -> str:
        """One-line operand summary for EXPLAIN rendering."""
        return ""


# ---------------------------------------------------------------------------
# Id-producing nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AllIds(PlanNode):
    """The schema's full live id universe (one memoized fetch per run)."""


@dataclass(frozen=True)
class IndexLookup(PlanNode):
    """One Eq/Range literal resolved against a single index.

    ``tactic`` is ``None`` for non-sensitive fields, which the cloud
    document store serves in plaintext.  ``param``/``low_param``/
    ``high_param`` are binding-vector slots; a ``None`` range slot means
    that bound is structurally open.
    """

    field: str
    op: str  # "eq" | "range"
    role: str | None
    tactic: str | None
    param: int | None = None
    low_param: int | None = None
    high_param: int | None = None

    def detail(self) -> str:
        target = self.tactic or "plain"
        if self.op == "range":
            bounds = (
                f"[{'lo' if self.low_param is not None else '-inf'}, "
                f"{'hi' if self.high_param is not None else '+inf'}]"
            )
            return f"{self.op} {self.field} {bounds} via {target}"
        return f"{self.op} {self.field} via {target}"


@dataclass(frozen=True)
class BoolQuery(PlanNode):
    """CNF clauses served natively by the schema's shared boolean tactic.

    ``clauses`` is a CNF of ``(field, param_slot)`` terms; the whole
    conjunction ships as one ``bool_query_terms`` protocol round.
    """

    tactic: str
    clauses: tuple[tuple[tuple[str, int], ...], ...]

    def detail(self) -> str:
        rendered = " & ".join(
            "(" + " | ".join(field for field, _ in clause) + ")"
            for clause in self.clauses
        )
        return f"{rendered} via {self.tactic}"


@dataclass(frozen=True)
class SetOp(PlanNode):
    """Gateway-side id-set combination: union, intersect, or diff.

    ``intersect`` parts evaluate in order with an empty-set short
    circuit; ``diff`` is ``parts[0] - parts[1]``.
    """

    op: str  # "union" | "intersect" | "diff"
    parts: tuple[PlanNode, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return self.parts

    def detail(self) -> str:
        return self.op


@dataclass(frozen=True)
class OrderedScan(PlanNode):
    """The order tactic's sorted id list (ORDER BY / min-max streaming)."""

    field: str
    role: str
    tactic: str
    descending: bool

    def detail(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"{self.field} {direction} via {self.tactic}"


# ---------------------------------------------------------------------------
# Document pipeline nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FetchDocs(PlanNode):
    """Chunked ``get_many`` of the source's candidate ids.

    ``chunk_default`` is the node's legacy chunk size; the engine
    resolves the effective size against ``PipelineConfig.fetch_chunk``
    (the single knob) and the runtime ``limit``.
    """

    source: PlanNode
    chunk_default: int = 64
    ordered: bool = False  # preserve source order instead of sorting ids

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def detail(self) -> str:
        return f"chunk={self.chunk_default}"


@dataclass(frozen=True)
class Decrypt(PlanNode):
    """AEAD-open fetched bodies into plaintext documents (gateway-side)."""

    source: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)


@dataclass(frozen=True)
class Verify(PlanNode):
    """Re-check decrypted documents against the plaintext predicate.

    Trims tactic approximations (BIEX-ZMF false positives, stale
    insert-as-upsert entries, Sophos addition-only updates) so results
    are exact.  The compiler omits this node when every feeding index is
    declared ``exact_search`` and membership cannot change.
    """

    source: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)


@dataclass(frozen=True)
class Limit(PlanNode):
    """Stop after ``limit`` surviving documents (bound at run time)."""

    source: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)


@dataclass(frozen=True)
class ProjectIds(PlanNode):
    """Reduce a document stream to its id set."""

    source: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)


@dataclass(frozen=True)
class Count(PlanNode):
    """Cardinality of an id set or document stream."""

    source: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)


@dataclass(frozen=True)
class StoreCount(PlanNode):
    """The document store's native per-schema count (no id transfer)."""


# ---------------------------------------------------------------------------
# Terminal computations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Extreme(PlanNode):
    """Min/max streamed off the order index, first survivor wins."""

    function: str  # "min" | "max"
    field: str
    role: str
    tactic: str
    filter: PlanNode | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.filter,) if self.filter is not None else ()

    def detail(self) -> str:
        return f"{self.function}({self.field}) via {self.tactic}"


@dataclass(frozen=True)
class CloudAggregate(PlanNode):
    """Cloud-side homomorphic aggregate over the source's id set."""

    function: str
    field: str
    role: str
    tactic: str
    source: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def detail(self) -> str:
        return f"{self.function}({self.field}) via {self.tactic}"


# ---------------------------------------------------------------------------
# Write pipeline nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadDoc(PlanNode):
    """Fetch-and-decrypt the current version (update/delete pre-image)."""


@dataclass(frozen=True)
class IndexMaintain(PlanNode):
    """Per-field tactic index maintenance for one write operation.

    ``fields`` maps each sensitive field to the tactic instances its
    entries land in — under adaptive selection this includes the
    dual-indexed alternatives.
    """

    op: str  # "insert" | "update" | "delete"
    fields: tuple[tuple[str, tuple[str, ...]], ...]

    def detail(self) -> str:
        return f"{self.op} over {len(self.fields)} field(s)"


@dataclass(frozen=True)
class StoreWrite(PlanNode):
    """The document-store write closing a write operation's batch."""

    method: str  # "insert_many" | "replace" | "delete"

    def detail(self) -> str:
        return self.method


@dataclass(frozen=True)
class WritePipeline(PlanNode):
    """A write operation's stages; index + store writes share one batch
    frame when ``PipelineConfig.batch_writes`` is on."""

    op: str  # "insert" | "update" | "delete"
    steps: tuple[PlanNode, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return self.steps

    def detail(self) -> str:
        return self.op


# ---------------------------------------------------------------------------
# The plan container
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Plan:
    """One compiled (and possibly optimized) operation."""

    operation: str
    schema: str
    root: PlanNode
    #: Number of value slots the binding vector must fill.
    param_count: int = 0
    #: Effective verification flag baked into the plan's shape.
    verify: bool = False


def walk(node: PlanNode, depth: int = 0) -> Iterator[tuple[PlanNode, int]]:
    """Depth-first (node, depth) traversal of a plan subtree."""
    yield node, depth
    for child in node.children():
        yield from walk(child, depth + 1)
