"""The optimizer's cost model: SPI priors blended with observed EWMAs.

Every tactic descriptor carries static *performance metrics* (Fig. 1):
a selection rank, protocol rounds per query, asymptotic notes.  Those
priors order tactics before any traffic flows; once the engine has
executed plan nodes, the runtime's :class:`~repro.spi.metrics.CostObservatory`
holds per-(scope, operation, tactic) latency EWMAs that override the
priors.  ``choose`` implements the adaptive selection loop: a bounded
round-robin warmup so every candidate gets observed, then exploitation
of the cheapest EWMA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.planner import ir

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executor import SchemaExecutor

#: Synthetic per-rank latency unit for tactics never observed yet; only
#: the *ordering* matters before real observations arrive.
_PRIOR_UNIT_MS = 1.0
#: Nominal cost of gateway-local set work and store round trips in the
#: same synthetic unit.
_STORE_MS = 1.0
_COMBINE_MS = 0.05
#: Nominal per-fetch surcharge when proof-on-fetch integrity is active:
#: a proof envelope per document plus the amortised ledger refresh.
_VERIFY_MS = 0.2
#: Nominal cost of serving a validated result-cache hit: one forced
#: freshness-ledger re-sync plus the gateway-local copy.
_RESULT_HIT_MS = 0.1


class CostModel:
    """Per-executor view over descriptor priors and observed latencies."""

    def __init__(self, executor: "SchemaExecutor"):
        self._executor = executor
        self._registry = executor.runtime.registry
        self._observatory = executor.runtime.cost

    # -- scopes ---------------------------------------------------------------

    def scope(self, field: str) -> str:
        return f"{self._executor.schema.name}.{field}"

    def _schema_scope(self) -> str:
        return self._executor.schema.name

    # -- per-tactic estimates -------------------------------------------------

    def prior_ms(self, tactic: str) -> float:
        descriptor = self._registry.descriptor(tactic)
        rounds = max(1, descriptor.performance.rounds_per_query)
        return _PRIOR_UNIT_MS * descriptor.performance.rank * rounds

    def observed_ms(self, scope: str, operation: str,
                    tactic: str) -> float | None:
        ewma = self._observatory.lookup(scope, operation, tactic)
        if ewma is None or ewma.observations == 0:
            return None
        return ewma.mean_ms

    def lookup_ms(self, scope: str, operation: str, tactic: str) -> float:
        observed = self.observed_ms(scope, operation, tactic)
        return self.prior_ms(tactic) if observed is None else observed

    # -- adaptive tactic selection -------------------------------------------

    def choose(self, field: str, role: str, operation: str,
               candidates: list[str]) -> str:
        """Pick among admissible tactics for one lookup role.

        Candidates are ``[primary, *alternatives]`` in static preference
        order.  During warmup each candidate is explored round-robin
        (fewest observations first, ties broken by static order); after
        warmup the lowest observed EWMA wins, falling back to descriptor
        priors for anything still unobserved.
        """
        if len(candidates) == 1:
            return candidates[0]
        scope = self.scope(field)
        warmup = max(1, self._executor.pipeline.adaptive_warmup)
        observations = [
            self._observatory.observations(scope, operation, name)
            for name in candidates
        ]
        if min(observations) < warmup:
            return candidates[observations.index(min(observations))]
        return min(
            candidates,
            key=lambda name: (self.lookup_ms(scope, operation, name),
                              candidates.index(name)),
        )

    # -- node estimates (EXPLAIN and intersect reordering) --------------------

    def estimate_ms(self, node: ir.PlanNode) -> float:
        """Estimated latency contribution of one node's subtree."""
        if isinstance(node, ir.IndexLookup):
            if node.tactic is None:
                return self._docs_ms("find_plain")
            return self.lookup_ms(self.scope(node.field), node.op,
                                  node.tactic)
        if isinstance(node, ir.BoolQuery):
            return self.lookup_ms(self._schema_scope() + "._bool", "bool",
                                  node.tactic)
        if isinstance(node, ir.AllIds):
            return self._docs_ms("all_ids")
        if isinstance(node, ir.StoreCount):
            return self._docs_ms("count")
        if isinstance(node, ir.SetOp):
            return _COMBINE_MS + sum(
                self.estimate_ms(part) for part in node.parts
            )
        if isinstance(node, ir.OrderedScan):
            return self.lookup_ms(self.scope(node.field), "ordered",
                                  node.tactic)
        if isinstance(node, ir.FetchDocs):
            return (self._docs_ms("get_many") + self.verify_surcharge_ms()
                    + self.estimate_ms(node.source))
        if isinstance(node, ir.Extreme):
            cost = self.lookup_ms(self.scope(node.field), "ordered",
                                  node.tactic) + self._docs_ms("get_many")
            if node.filter is not None:
                cost += self.estimate_ms(node.filter)
            return cost
        if isinstance(node, ir.CloudAggregate):
            return self.prior_ms(node.tactic) + self.estimate_ms(node.source)
        if isinstance(node, (ir.Decrypt, ir.Verify, ir.Limit,
                             ir.ProjectIds, ir.Count)):
            children = node.children()
            return _COMBINE_MS + sum(self.estimate_ms(c) for c in children)
        if isinstance(node, ir.WritePipeline):
            return sum(self.estimate_ms(step) for step in node.steps)
        if isinstance(node, ir.IndexMaintain):
            return sum(
                self.prior_ms(tactic)
                for _, tactics in node.fields
                for tactic in tactics
            )
        if isinstance(node, ir.ReadDoc):
            return _STORE_MS + self.verify_surcharge_ms()
        if isinstance(node, ir.StoreWrite):
            return _STORE_MS
        return _COMBINE_MS

    # -- result-cache hit probability ------------------------------------------

    def result_hit_probability(self, plan_key) -> float:
        """Learned validated-hit rate for one plan shape (0 when the
        result cache is off or the shape is unobserved)."""
        tier = getattr(self._executor.runtime, "cache_tier", None)
        if tier is None or tier.results is None:
            return 0.0
        observed = tier.shape_hit_probability(plan_key)
        return 0.0 if observed is None else observed

    def cached_estimate_ms(self, plan_key, node: ir.PlanNode) -> float:
        """Expected latency of one read shape under the result cache:
        the engine estimate weighted by the learned miss rate, plus the
        (cheap) validated-hit path weighted by the hit rate."""
        probability = self.result_hit_probability(plan_key)
        if probability <= 0.0:
            return self.estimate_ms(node)
        return ((1.0 - probability) * self.estimate_ms(node)
                + probability * _RESULT_HIT_MS)

    def verify_surcharge_ms(self) -> float:
        """Extra per-fetch cost of proof-on-fetch integrity (0 when the
        verifier is off, inactive, or in audit mode — audit verification
        runs off the hot path)."""
        verifier = getattr(self._executor.runtime, "verifier", None)
        if verifier is None or not verifier.active:
            return 0.0
        return _VERIFY_MS if verifier.config.mode == "fetch" else 0.0

    def _docs_ms(self, method: str) -> float:
        observed = self.observed_ms(self._schema_scope(), method, "docs")
        return _STORE_MS if observed is None else observed
