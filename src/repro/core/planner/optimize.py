"""Optimizer: cost-based rewrites over compiled plans.

Two rewrites, both **gated behind** ``PipelineConfig.adaptive_selection``
so the default configuration executes plans exactly as compiled (the
same RPCs, in the same order, as the seed executor):

* *Adaptive tactic selection* — when a field plan recorded admissible
  ``alternatives`` for a lookup role, each ``IndexLookup`` is re-pointed
  at whichever candidate the cost model currently believes is cheapest
  (round-robin during warmup).  Alternatives are dual-indexed on the
  write path, so any candidate answers correctly.
* *Cheapest-first intersection* — ``SetOp(intersect)`` parts are
  reordered by estimated cost so the empty-set short circuit and the
  first-set bias of intersection favour the cheap index.

``reselect`` re-runs the same rewrite on a cached plan, which is how a
cache *hit* still tracks drifting latencies.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.core.planner import ir
from repro.core.planner.cost import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executor import SchemaExecutor


class PlanOptimizer:
    def __init__(self, executor: "SchemaExecutor", cost_model: CostModel):
        self._x = executor
        self._cost = cost_model

    def optimize(self, plan: ir.Plan) -> ir.Plan:
        if not self._x.pipeline.adaptive_selection:
            return plan
        root = self._rewrite(plan.root)
        if root is plan.root:
            return plan
        return dataclasses.replace(plan, root=root)

    def reselect(self, plan: ir.Plan) -> ir.Plan:
        """Refresh a cached plan's choices against current observations."""
        return self.optimize(plan)

    # -- rewriting -------------------------------------------------------------

    def _rewrite(self, node: ir.PlanNode) -> ir.PlanNode:
        if isinstance(node, ir.IndexLookup):
            return self._reselect_lookup(node)
        if isinstance(node, ir.SetOp):
            parts = tuple(self._rewrite(part) for part in node.parts)
            if node.op == "intersect":
                ordered = tuple(sorted(
                    parts, key=lambda part: self._cost.estimate_ms(part)
                ))
            else:
                ordered = parts
            if ordered == node.parts:
                return node
            return dataclasses.replace(node, parts=ordered)
        # Single-child pipeline nodes: rewrite through.
        if isinstance(node, (ir.FetchDocs, ir.Decrypt, ir.Verify, ir.Limit,
                             ir.ProjectIds, ir.Count, ir.CloudAggregate)):
            child = self._rewrite(node.source)
            if child is node.source:
                return node
            return dataclasses.replace(node, source=child)
        if isinstance(node, ir.Extreme) and node.filter is not None:
            child = self._rewrite(node.filter)
            if child is node.filter:
                return node
            return dataclasses.replace(node, filter=child)
        return node

    def _reselect_lookup(self, node: ir.IndexLookup) -> ir.PlanNode:
        if node.role is None or node.tactic is None:
            return node  # plain-field lookup: nothing to select among
        plan = self._x.plans.get(node.field)
        if plan is None:
            return node
        alternatives = plan.alternatives.get(node.role, ())
        if not alternatives:
            return node
        primary = plan.roles[node.role]
        chosen = self._cost.choose(
            node.field, node.role, node.op,
            [primary, *alternatives],
        )
        if chosen == node.tactic:
            return node
        return dataclasses.replace(node, tactic=chosen)
