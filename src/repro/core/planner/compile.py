"""Compiler: public operations -> plan IR.

Two stages.  :func:`parameterize` strips the literal *values* out of a
predicate tree, leaving :class:`~repro.core.planner.ir.Param` slots and
producing the predicate's hashable *shape* (the plan-cache key component)
plus the binding vector for this invocation.  Parameterization happens
**before** CNF conversion on purpose: CNF's intra-clause dedup compares
literals structurally, and with values replaced by distinct slots it can
only ever merge the duplicated subtrees distribution itself creates —
never two user literals that merely share a value — so a plan compiled
for one binding vector is correct for every other.

:class:`PlanCompiler` then mirrors the seed executor's routing exactly:
the CNF split into natively-boolean clauses (one ``BoolQuery`` round for
all of them) versus per-literal index lookups, plain-field lookups served
by the document store, BIEX equality via the boolean protocol, and the
document pipeline (fetch -> decrypt -> verify -> limit) on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.planner import ir
from repro.core.query import And, Eq, Not, Or, Predicate, Range, to_cnf
from repro.errors import QueryError, UnsupportedOperation
from repro.tactics.biex import BiexGateway

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executor import SchemaExecutor

Shape = Any  # nested tuples; hashable


def parameterize(
    predicate: Predicate | None,
) -> tuple[Predicate | None, list, Shape]:
    """Split a predicate into (parameterized tree, bindings, shape).

    The walk order is deterministic (depth-first, left-to-right), so two
    predicates with equal shapes produce binding vectors whose slots line
    up with the cached plan's ``Param`` indices.
    """
    if predicate is None:
        return None, [], None
    values: list = []

    def walk(node: Predicate) -> tuple[Predicate, Shape]:
        if isinstance(node, Eq):
            slot = len(values)
            values.append(node.value)
            return Eq(node.field, ir.Param(slot)), ("eq", node.field)
        if isinstance(node, Range):
            low = high = None
            low_mark = high_mark = False
            if node.low is not None:
                low = ir.Param(len(values))
                values.append(node.low)
                low_mark = True
            if node.high is not None:
                high = ir.Param(len(values))
                values.append(node.high)
                high_mark = True
            return (
                Range(node.field, low, high),
                ("range", node.field, low_mark, high_mark),
            )
        if isinstance(node, Not):
            inner, shape = walk(node.part)
            return Not(inner), ("not", shape)
        if isinstance(node, (And, Or)):
            parts, shapes = [], []
            for part in node.parts:
                inner, shape = walk(part)
                parts.append(inner)
                shapes.append(shape)
            label = "and" if isinstance(node, And) else "or"
            return type(node)(parts), (label, tuple(shapes))
        raise QueryError(
            f"cannot execute literal of type {type(node).__name__}"
        )

    parameterized, shape = walk(predicate)
    return parameterized, values, shape


def _slot(value: Any) -> int:
    if not isinstance(value, ir.Param):
        raise QueryError("compiler received an unparameterized predicate")
    return value.index


class PlanCompiler:
    """Compiles one executor's operations into plan IR."""

    def __init__(self, executor: "SchemaExecutor"):
        self._x = executor

    # -- candidate-id subtrees -------------------------------------------------

    def candidates(self, predicate: Predicate) -> tuple[ir.PlanNode, bool]:
        """Compile a parameterized predicate to an id-producing subtree.

        Returns ``(node, exact)`` where ``exact`` is True when every
        feeding index is declared ``exact_search`` — i.e. verification
        cannot change candidate-set membership.
        """
        x = self._x
        cnf = to_cnf(predicate)
        boolean_clauses: list[list[Eq]] = []
        other_clauses: list[list[Predicate]] = []
        for clause in cnf:
            if x._bool_instance is not None and all(
                isinstance(literal, Eq)
                and x._uses_bool_tactic(literal.field)
                for literal in clause
            ):
                boolean_clauses.append(clause)  # type: ignore[arg-type]
            else:
                other_clauses.append(clause)

        parts: list[ir.PlanNode] = []
        if boolean_clauses:
            parts.append(ir.BoolQuery(
                tactic=self._bool_tactic_name(),
                clauses=tuple(
                    tuple(
                        (literal.field, _slot(literal.value))
                        for literal in clause
                    )
                    for clause in boolean_clauses
                ),
            ))
        for clause in other_clauses:
            literals = [self._literal_node(literal) for literal in clause]
            parts.append(
                literals[0] if len(literals) == 1
                else ir.SetOp("union", tuple(literals))
            )
        node = parts[0] if len(parts) == 1 else ir.SetOp(
            "intersect", tuple(parts)
        )
        return node, self._exact(node)

    def _bool_tactic_name(self) -> str:
        x = self._x
        for field in sorted(x.plans):
            plan = x.plans[field]
            for role in sorted(plan.roles):
                if x._instances[field][role] is x._bool_instance:
                    return plan.roles[role]
        raise QueryError("boolean clauses without a boolean tactic")

    def _literal_node(self, literal: Predicate) -> ir.PlanNode:
        if isinstance(literal, Not):
            return ir.SetOp(
                "diff", (ir.AllIds(), self._literal_node(literal.part))
            )
        if isinstance(literal, Eq):
            return self._eq_node(literal)
        if isinstance(literal, Range):
            return self._range_node(literal)
        raise QueryError(
            f"cannot execute literal of type {type(literal).__name__}"
        )

    def _eq_node(self, literal: Eq) -> ir.PlanNode:
        x = self._x
        spec = x.schema.fields.get(literal.field)
        if spec is None:
            raise QueryError(
                f"unknown field {literal.field!r} in schema "
                f"{x.schema.name!r}"
            )
        if not spec.sensitive:
            return ir.IndexLookup(
                literal.field, "eq", None, None, param=_slot(literal.value)
            )
        instance = x._role_instance(literal.field, "eq")
        if instance is None:
            raise UnsupportedOperation(
                f"field {literal.field!r} is not annotated for equality "
                f"search (op EQ)"
            )
        if isinstance(instance, BiexGateway):
            # BIEX serves equality through its boolean protocol (no
            # separate EqResolution interface), as a one-clause CNF.
            return ir.BoolQuery(
                tactic=x.plans[literal.field].roles["eq"],
                clauses=(((literal.field, _slot(literal.value)),),),
            )
        return ir.IndexLookup(
            literal.field, "eq", "eq", x.plans[literal.field].roles["eq"],
            param=_slot(literal.value),
        )

    def _range_node(self, literal: Range) -> ir.PlanNode:
        x = self._x
        spec = x.schema.fields.get(literal.field)
        if spec is None:
            raise QueryError(
                f"unknown field {literal.field!r} in schema "
                f"{x.schema.name!r}"
            )
        low = None if literal.low is None else _slot(literal.low)
        high = None if literal.high is None else _slot(literal.high)
        if not spec.sensitive:
            return ir.IndexLookup(
                literal.field, "range", None, None,
                low_param=low, high_param=high,
            )
        instance = x._role_instance(literal.field, "range")
        if instance is None:
            raise UnsupportedOperation(
                f"field {literal.field!r} is not annotated for range "
                f"search (op RG)"
            )
        return ir.IndexLookup(
            literal.field, "range", "range",
            x.plans[literal.field].roles["range"],
            low_param=low, high_param=high,
        )

    def _exact(self, node: ir.PlanNode) -> bool:
        registry = self._x.runtime.registry
        if isinstance(node, ir.IndexLookup):
            if node.tactic is None:
                return True
            return registry.descriptor(node.tactic).exact_search
        if isinstance(node, ir.BoolQuery):
            return registry.descriptor(node.tactic).exact_search
        if isinstance(node, ir.AllIds):
            return True
        if isinstance(node, ir.SetOp):
            return all(self._exact(part) for part in node.parts)
        return False

    # -- read operations -------------------------------------------------------

    def compile_find(self, predicate: Predicate | None, verify: bool,
                     has_limit: bool, param_count: int) -> ir.Plan:
        if predicate is None:
            source: ir.PlanNode = ir.AllIds()
        else:
            source, _ = self.candidates(predicate)
        root: ir.PlanNode = ir.Decrypt(ir.FetchDocs(source, 64))
        if verify and predicate is not None:
            root = ir.Verify(root)
        if has_limit:
            root = ir.Limit(root)
        return ir.Plan("find", self._x.schema.name, root,
                       param_count=param_count, verify=verify)

    def _find_ids_node(self, predicate: Predicate | None,
                       verify: bool) -> ir.PlanNode:
        if verify or predicate is None:
            source: ir.PlanNode = (
                ir.AllIds() if predicate is None
                else self.candidates(predicate)[0]
            )
            root: ir.PlanNode = ir.Decrypt(ir.FetchDocs(source, 64))
            if verify and predicate is not None:
                root = ir.Verify(root)
            return ir.ProjectIds(root)
        return self.candidates(predicate)[0]

    def compile_find_ids(self, predicate: Predicate | None, verify: bool,
                         param_count: int) -> ir.Plan:
        return ir.Plan(
            "find_ids", self._x.schema.name,
            self._find_ids_node(predicate, verify),
            param_count=param_count, verify=verify,
        )

    def compile_count(self, predicate: Predicate | None,
                      param_count: int) -> ir.Plan:
        x = self._x
        verify = x.verify_results
        if predicate is None:
            return ir.Plan("count", x.schema.name, ir.StoreCount())
        source, exact = self.candidates(predicate)
        if not verify or exact:
            # Decrypt-free fast path: every feeding index is exact, so
            # verification could only re-confirm membership — counting
            # the candidate ids is already the true cardinality.
            root: ir.PlanNode = ir.Count(source)
        else:
            root = ir.Count(ir.Verify(ir.Decrypt(ir.FetchDocs(source, 64))))
        return ir.Plan("count", x.schema.name, root,
                       param_count=param_count, verify=verify)

    def compile_aggregate(self, function: str, field: str,
                          where: Predicate | None,
                          param_count: int) -> ir.Plan:
        x = self._x
        role = f"agg:{function}"
        instance = x._role_instance(field, role)
        if instance is None:
            if function == "count":
                return ir.Plan(
                    "aggregate", x.schema.name,
                    self.compile_count(where, param_count).root,
                    param_count=param_count, verify=x.verify_results,
                )
            raise UnsupportedOperation(
                f"field {field!r} is not annotated for aggregate "
                f"{function!r}"
            )
        tactic = x.plans[field].roles[role]
        verify = x.verify_results
        if function in ("min", "max"):
            filter_node = (
                None if where is None
                else self._find_ids_node(where, verify)
            )
            root: ir.PlanNode = ir.Extreme(function, field, role, tactic,
                                           filter_node)
        else:
            source = (
                ir.AllIds() if where is None
                else self._find_ids_node(where, verify)
            )
            root = ir.CloudAggregate(function, field, role, tactic, source)
        return ir.Plan("aggregate", x.schema.name, root,
                       param_count=param_count, verify=verify)

    def compile_find_sorted(self, field: str, descending: bool,
                            has_limit: bool) -> ir.Plan:
        x = self._x
        instance = x._role_instance(field, "range")
        if instance is None:
            raise UnsupportedOperation(
                f"field {field!r} is not annotated for range/order "
                f"operations (op RG)"
            )
        scan = ir.OrderedScan(field, "range", x.plans[field].roles["range"],
                              descending)
        root: ir.PlanNode = ir.Decrypt(
            ir.FetchDocs(scan, 32, ordered=True)
        )
        if has_limit:
            root = ir.Limit(root)
        return ir.Plan("find_sorted", x.schema.name, root)

    # -- write operations ------------------------------------------------------

    def compile_write(self, op: str) -> ir.Plan:
        x = self._x
        fields = tuple(
            (field, tuple(x.write_tactic_names(field)))
            for field in sorted(x.plans)
        )
        maintain = ir.IndexMaintain(op, fields)
        if op == "insert":
            steps: tuple[ir.PlanNode, ...] = (
                maintain, ir.StoreWrite("insert_many")
            )
        elif op == "update":
            steps = (ir.ReadDoc(), maintain, ir.StoreWrite("replace"))
        else:
            steps = (ir.ReadDoc(), maintain, ir.StoreWrite("delete"))
        return ir.Plan(op, x.schema.name, ir.WritePipeline(op, steps))
