"""Query planner: compile -> optimize -> execute over the plan IR.

The paper models data access as runtime-adaptive: tactics declare
leakage profiles *and* performance metrics (§3.1), and the middleware
picks among admissible tactics per operation (§3.3).  This package makes
that adaptivity real by splitting the old monolithic executor into three
layers:

* :mod:`repro.core.planner.ir` — the immutable plan IR: a DAG of
  operator nodes (``IndexLookup``, ``BoolQuery``, ``SetOp``,
  ``FetchDocs``, ``Decrypt``, ``Verify``, ...) with predicate *values*
  factored out into parameter slots, so one compiled plan serves every
  predicate of the same shape.
* :mod:`repro.core.planner.compile` — the compiler from the public
  operations (``find``, ``find_ids``, ``count``, ``aggregate``,
  ``find_sorted`` and the write paths) to plan IR.
* :mod:`repro.core.planner.optimize` — the cost-based optimizer: node
  cost estimation from the SPI performance descriptors blended with the
  runtime's observed latency EWMAs, cheapest-first reordering of
  intersections, and adaptive tactic selection among a field plan's
  ``alternatives``.
* :mod:`repro.core.planner.engine` — the execution engine over the
  existing batch/fan-out/prefetch machinery, recording per-node timings
  back into the cost observatory.

:class:`QueryPlanner` glues the layers together and owns the plan cache
(keyed by (schema, operation, predicate shape), invalidated on schema
migration) plus the planner statistics surfaced by
``DataBlinder.planner_report``.
"""

from repro.core.planner.cost import CostModel
from repro.core.planner.ir import Plan, PlanNode, walk
from repro.core.planner.planner import PlannerStats, QueryPlanner

__all__ = [
    "CostModel",
    "Plan",
    "PlanNode",
    "PlannerStats",
    "QueryPlanner",
    "walk",
]
