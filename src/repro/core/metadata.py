"""Data protection metadata subsystem (§4.1, subsystem ii).

Persists per-application schemas, their field annotations and the tactic
plans selected for them, so a restarted gateway reloads its configuration
instead of re-planning (and so operators can audit what was deployed).
Backed by the gateway-side KV store.
"""

from __future__ import annotations

import json

from repro.core.schema import FieldAnnotation, Schema
from repro.core.selection import FieldPlan
from repro.errors import SchemaError
from repro.stores.kv import KeyValueStore

_SCHEMA_PREFIX = b"metadata/schema/"
_PLAN_PREFIX = b"metadata/plan/"


def _plan_to_dict(plan: FieldPlan) -> dict:
    return {
        "field": plan.field,
        "annotation": {
            "class": int(plan.annotation.protection_class),
            "ops": sorted(o.value for o in plan.annotation.operations),
            "aggs": sorted(a.value for a in plan.annotation.aggregates),
        },
        "roles": dict(plan.roles),
        "reasons": dict(plan.reasons),
        "alternatives": {
            role: list(names) for role, names in plan.alternatives.items()
        },
    }


def _plan_from_dict(data: dict) -> FieldPlan:
    annotation = FieldAnnotation.parse(
        data["annotation"]["class"],
        data["annotation"]["ops"],
        data["annotation"].get("aggs", ()),
    )
    return FieldPlan(
        field=data["field"],
        annotation=annotation,
        roles=dict(data["roles"]),
        reasons=dict(data.get("reasons", {})),
        alternatives={
            role: tuple(names)
            for role, names in data.get("alternatives", {}).items()
        },
    )


class MetadataRepository:
    """Schema + plan persistence over the gateway KV store."""

    def __init__(self, kv: KeyValueStore):
        self._kv = kv

    # -- schemas ---------------------------------------------------------------

    def save_schema(self, schema: Schema,
                    plans: dict[str, FieldPlan]) -> None:
        self._kv.put(
            _SCHEMA_PREFIX + schema.name.encode(),
            json.dumps(schema.to_dict(), sort_keys=True).encode(),
        )
        self._kv.put(
            _PLAN_PREFIX + schema.name.encode(),
            json.dumps(
                {field: _plan_to_dict(plan) for field, plan in plans.items()},
                sort_keys=True,
            ).encode(),
        )

    def load_schema(self, name: str) -> Schema:
        blob = self._kv.get(_SCHEMA_PREFIX + name.encode())
        if blob is None:
            raise SchemaError(f"no stored schema named {name!r}")
        return Schema.from_dict(json.loads(blob))

    def load_plans(self, name: str) -> dict[str, FieldPlan]:
        blob = self._kv.get(_PLAN_PREFIX + name.encode())
        if blob is None:
            raise SchemaError(f"no stored plan for schema {name!r}")
        return {
            field: _plan_from_dict(data)
            for field, data in json.loads(blob).items()
        }

    def schema_names(self) -> list[str]:
        return sorted(
            key[len(_SCHEMA_PREFIX):].decode()
            for key in self._kv.keys()
            if key.startswith(_SCHEMA_PREFIX)
        )

    def delete_schema(self, name: str) -> None:
        self._kv.delete(_SCHEMA_PREFIX + name.encode())
        self._kv.delete(_PLAN_PREFIX + name.encode())
