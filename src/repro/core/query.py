"""Query AST: predicates and aggregates of the data-access model (§3.2).

Applications express searches as combinator trees — ``Eq``, ``And``,
``Or``, ``Not``, ``Range`` — optionally wrapped in an aggregate function.
The executor normalises predicate trees to CNF (the form the boolean
tactics consume) and maps each component onto a selected tactic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.crypto.encoding import Value
from repro.errors import QueryError
from repro.spi.descriptors import Aggregate


class Predicate:
    """Base class of all search predicates."""

    def fields(self) -> set[str]:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Eq(Predicate):
    """``field == value`` (equality search)."""

    field: str
    value: Value

    def fields(self) -> set[str]:
        return {self.field}


@dataclass(frozen=True)
class Range(Predicate):
    """``low <= field <= high``; either bound may be None (open)."""

    field: str
    low: Value = None
    high: Value = None

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise QueryError("range predicate needs at least one bound")

    def fields(self) -> set[str]:
        return {self.field}


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def __init__(self, parts: list[Predicate] | tuple[Predicate, ...]):
        if not parts:
            raise QueryError("empty conjunction")
        object.__setattr__(self, "parts", tuple(parts))

    def fields(self) -> set[str]:
        return set().union(*(p.fields() for p in self.parts))


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def __init__(self, parts: list[Predicate] | tuple[Predicate, ...]):
        if not parts:
            raise QueryError("empty disjunction")
        object.__setattr__(self, "parts", tuple(parts))

    def fields(self) -> set[str]:
        return set().union(*(p.fields() for p in self.parts))


@dataclass(frozen=True)
class Not(Predicate):
    part: Predicate

    def fields(self) -> set[str]:
        return self.part.fields()


@dataclass(frozen=True)
class AggregateQuery:
    """An aggregate function over a field, optionally filtered.

    Example: *the average heart rate of a patient* is
    ``AggregateQuery(Aggregate.AVG, "value", where=Eq("subject", ...))``.
    """

    function: Aggregate
    field: str
    where: Predicate | None = None


# ---------------------------------------------------------------------------
# Normalisation
# ---------------------------------------------------------------------------


def push_negations(predicate: Predicate) -> Predicate:
    """Rewrite to negation normal form (NNF).

    Negations of equalities cannot be pushed into a search tactic; they
    survive as ``Not(Eq)`` leaves and are applied by the executor as a
    gateway-side set difference.
    """
    if isinstance(predicate, Not):
        inner = predicate.part
        if isinstance(inner, Not):
            return push_negations(inner.part)
        if isinstance(inner, And):
            return Or([push_negations(Not(p)) for p in inner.parts])
        if isinstance(inner, Or):
            return And([push_negations(Not(p)) for p in inner.parts])
        return predicate  # Not(Eq) / Not(Range) leaf
    if isinstance(predicate, And):
        return And([push_negations(p) for p in predicate.parts])
    if isinstance(predicate, Or):
        return Or([push_negations(p) for p in predicate.parts])
    return predicate


def to_cnf(predicate: Predicate) -> list[list[Predicate]]:
    """Convert an NNF predicate into CNF clauses (lists of literal leaves).

    Distribution can blow up exponentially for adversarial inputs; typical
    application queries (the paper's boolean search examples) are shallow.
    """
    predicate = push_negations(predicate)

    def cnf(p: Predicate) -> list[list[Predicate]]:
        if isinstance(p, And):
            clauses: list[list[Predicate]] = []
            for part in p.parts:
                clauses.extend(cnf(part))
            return clauses
        if isinstance(p, Or):
            product: list[list[Predicate]] = [[]]
            for part in p.parts:
                part_clauses = cnf(part)
                product = [
                    existing + clause
                    for existing in product
                    for clause in part_clauses
                ]
                if len(product) > 512:
                    raise QueryError("boolean query too complex to normalise")
            return product
        return [[p]]

    # Deduplicate literals inside each clause.
    normalised = []
    for clause in cnf(predicate):
        unique: list[Predicate] = []
        for literal in clause:
            if literal not in unique:
                unique.append(literal)
        normalised.append(unique)
    return normalised


def iter_literals(predicate: Predicate) -> Iterator[Predicate]:
    """Yield the leaf literals (Eq/Range/Not-leaf) of a predicate tree."""
    if isinstance(predicate, (And, Or)):
        for part in predicate.parts:
            yield from iter_literals(part)
    elif isinstance(predicate, Not) and isinstance(predicate.part,
                                                   (And, Or, Not)):
        yield from iter_literals(push_negations(predicate))
    else:
        yield predicate


def evaluate_plain(predicate: Predicate, document: dict) -> bool:
    """Reference evaluation over a plaintext document (baseline S_A and
    result verification in tests)."""
    if isinstance(predicate, Eq):
        return document.get(predicate.field) == predicate.value
    if isinstance(predicate, Range):
        value = document.get(predicate.field)
        if value is None:
            return False
        if predicate.low is not None and value < predicate.low:
            return False
        if predicate.high is not None and value > predicate.high:
            return False
        return True
    if isinstance(predicate, And):
        return all(evaluate_plain(p, document) for p in predicate.parts)
    if isinstance(predicate, Or):
        return any(evaluate_plain(p, document) for p in predicate.parts)
    if isinstance(predicate, Not):
        return not evaluate_plain(predicate.part, document)
    raise QueryError(f"unknown predicate {type(predicate).__name__}")
