"""Schema binding and the execution façade over the query planner.

The executor is the middleware-core's "abstract execution of the
persistence logic" (§4.1).  Since the planner refactor it is a thin
façade: it binds a schema's field plans to live tactic instances, owns
the body cipher and the write-batch/fan-out plumbing, and delegates
every operation to its :class:`repro.core.planner.QueryPlanner`, which
compiles the operation to plan IR, optimizes it against the cost model,
caches it by predicate shape, and executes it on the plan engine.

Verification still makes the whole pipeline sound under the
approximations the tactics are allowed: BIEX-ZMF false positives, stale
entries from insert-as-upsert range tactics and addition-only Sophos
updates are all trimmed by the plan's ``Verify`` stage, so ``find``
always returns exactly the matching documents.  Tactics that declare
``exact_search`` let the compiler drop that stage where membership
cannot change (the decrypt-free ``count`` path).

When a :class:`repro.net.batch.PipelineConfig` enables them, the
latency optimisations rewire the hot paths without changing results:
write batching, CNF literal fan-out, chunked fetch with prefetch — all
executed node-by-node by the plan engine with the seed semantics —
plus the planner-era knobs (``fetch_chunk``, ``plan_cache``,
``adaptive_selection``).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Any, ContextManager

from repro.core.planner import QueryPlanner
from repro.core.query import AggregateQuery, Predicate
from repro.core.schema import Schema
from repro.core.selection import FieldPlan
from repro.crypto.encoding import Value
from repro.crypto.symmetric import Aead
from repro.errors import DocumentNotFound, RemoteError
from repro.gateway.service import GatewayRuntime
from repro.net import message
from repro.net.batch import PipelineConfig
from repro.spi.interfaces import GatewayDocIDGen
from repro.tactics.base import random_doc_id
from repro.tactics.biex import BiexGateway

BOOL_SCOPE_SUFFIX = "._bool"


def _is_not_found(error: Exception) -> bool:
    """Known-absent document, locally raised or relayed over RPC."""
    if isinstance(error, DocumentNotFound):
        return True
    return (isinstance(error, RemoteError)
            and error.remote_type == "DocumentNotFound")

#: Lookup roles whose alternatives are dual-indexed for adaptive
#: selection (aggregate and store roles always stay on the primary).
ADAPTIVE_ROLES = ("eq", "range")


class SchemaExecutor:
    """All persistence logic for one (application, schema) binding."""

    def __init__(self, runtime: GatewayRuntime, schema: Schema,
                 plans: dict[str, FieldPlan], verify_results: bool = True,
                 pad_bucket: int = 0,
                 pipeline: PipelineConfig | None = None):
        self.runtime = runtime
        self.schema = schema
        self.plans = plans
        self.verify_results = verify_results
        #: When positive, body plaintexts are padded up to a multiple of
        #: this many bytes before encryption, hiding exact value lengths
        #: from a snapshot adversary (the taxonomy's "things which can be
        #: hidden by padding").
        self.pad_bucket = pad_bucket
        self.pipeline = pipeline or runtime.pipeline
        self._collector = (
            runtime.batch_collector if self.pipeline.batch_writes else None
        )
        self._fanout_pool: ThreadPoolExecutor | None = None
        self._fanout_lock = threading.Lock()
        self._body_aead = Aead(
            runtime.keystore.derive(f"{schema.name}._body", "core", "aead")
        )
        self._instances: dict[str, dict[str, Any]] = {}
        self._alternatives: dict[tuple[str, str, str], Any] = {}
        self._bool_instance: BiexGateway | None = None
        self._load_instances()
        self.planner = QueryPlanner(self)

    # -- instance wiring ---------------------------------------------------------

    def _bool_scope(self) -> str:
        return self.schema.name + BOOL_SCOPE_SUFFIX

    def _load_instances(self) -> None:
        registry = self.runtime.registry
        for field, plan in self.plans.items():
            by_role: dict[str, Any] = {}
            for role, tactic_name in plan.roles.items():
                if issubclass(registry.get(tactic_name).gateway_cls,
                              BiexGateway):
                    # Boolean tactics index cross-field terms, so a single
                    # instance is shared by every BL field of the schema.
                    scope = self._bool_scope()
                else:
                    scope = f"{self.schema.name}.{field}"
                instance = self.runtime.tactic(scope, tactic_name)
                by_role[role] = instance
                if isinstance(instance, BiexGateway):
                    self._bool_instance = instance
            self._instances[field] = by_role
            if self.pipeline.adaptive_selection:
                # Dual-index the recorded runner-ups so the optimizer may
                # route lookups to them (never BIEX — selection excludes
                # shared-instance tactics from alternatives).
                for role in ADAPTIVE_ROLES:
                    for name in plan.alternatives.get(role, ()):
                        self._alternatives[(field, role, name)] = (
                            self.runtime.tactic(
                                f"{self.schema.name}.{field}", name
                            )
                        )

    def _role_instance(self, field: str, role: str) -> Any | None:
        return self._instances.get(field, {}).get(role)

    def _uses_bool_tactic(self, field: str) -> bool:
        by_role = self._instances.get(field, {})
        return any(
            by_role.get(role) is self._bool_instance
            for role in ("bool", "eq")
        )

    def lookup_instance(self, field: str, role: str | None,
                        tactic: str) -> Any:
        """The instance serving one plan-IR lookup node.

        The statically selected tactic resolves to its wired role
        instance (identity matters for the shared boolean instance);
        an adaptive alternative resolves to its dual-indexed instance.
        """
        if role is not None:
            primary = self._instances.get(field, {}).get(role)
            if primary is not None and (
                self.plans[field].roles.get(role) == tactic
            ):
                return primary
            alternative = self._alternatives.get((field, role, tactic))
            if alternative is not None:
                return alternative
        return self.runtime.tactic(f"{self.schema.name}.{field}", tactic)

    def _field_instances(self, field: str) -> list[Any]:
        """Distinct *primary* tactic instances bound to a field."""
        seen: list[Any] = []
        for role in sorted(self._instances.get(field, {})):
            instance = self._instances[field][role]
            if all(instance is not s for s in seen):
                seen.append(instance)
        return seen

    def write_instances(self, field: str) -> list[Any]:
        """Distinct instances a write must feed: the primaries, plus the
        dual-indexed alternatives under adaptive selection."""
        seen = self._field_instances(field)
        for (alt_field, _, _), instance in sorted(
            self._alternatives.items(), key=lambda item: item[0]
        ):
            if alt_field == field and all(
                instance is not s for s in seen
            ):
                seen.append(instance)
        return seen

    def write_tactic_names(self, field: str) -> list[str]:
        """Distinct tactic names the write path feeds for a field."""
        plan = self.plans[field]
        names = list(plan.tactic_names)
        for (alt_field, role, name) in sorted(self._alternatives):
            if alt_field == field and name not in names:
                names.append(name)
        return names

    # -- pipelining helpers --------------------------------------------------------

    def _write_batch(self) -> ContextManager[Any]:
        """Collection scope for one write operation's cloud RPCs.

        With batching enabled, everything the tactic halves and the
        document store are sent inside this scope crosses the wire as one
        batch frame; otherwise it is a no-op and every RPC stands alone.
        """
        if self._collector is None:
            return nullcontext()
        return self._collector.collect()

    def _pool(self) -> ThreadPoolExecutor | None:
        """Bounded worker pool for read/write-side fan-out (lazy, shared)."""
        workers = max(
            self.pipeline.fanout_workers,
            2 if self.pipeline.prefetch else 0,
            2 if self.pipeline.write_chunk > 0 else 0,
        )
        if workers < 2:
            return None
        if self._fanout_pool is None:
            with self._fanout_lock:
                if self._fanout_pool is None:
                    self._fanout_pool = ThreadPoolExecutor(
                        max_workers=workers,
                        thread_name_prefix=f"fanout-{self.schema.name}",
                    )
        return self._fanout_pool

    # -- body encryption ------------------------------------------------------------

    def _seal_body(self, sensitive: dict[str, Value]) -> bytes:
        payload = message.encode(sensitive)
        if self.pad_bucket > 0:
            framed = len(payload).to_bytes(4, "big") + payload
            padded_length = -(-len(framed) // self.pad_bucket) * (
                self.pad_bucket
            )
            payload = framed + bytes(padded_length - len(framed))
        return self._body_aead.encrypt(payload)

    def _open_body(self, blob: bytes) -> dict[str, Value]:
        payload = self._body_aead.decrypt(blob)
        if self.pad_bucket > 0:
            length = int.from_bytes(payload[:4], "big")
            payload = payload[4:4 + length]
        return message.decode(payload)

    def _split_document(self, document: dict[str, Value]
                        ) -> tuple[dict[str, Value], dict[str, Value]]:
        sensitive: dict[str, Value] = {}
        plain: dict[str, Value] = {}
        for name, value in document.items():
            if name == "_id":
                continue
            spec = self.schema.fields.get(name)
            if spec is not None and spec.sensitive:
                sensitive[name] = value
            else:
                plain[name] = value
        return sensitive, plain

    # -- CRUD --------------------------------------------------------------------------

    def insert(self, document: dict[str, Value]) -> str:
        return self.planner.insert_bulk([document])[0]

    def insert_many(self, documents: list[dict[str, Value]]) -> list[str]:
        """Bulk insert: tactic protocols run per document, but all the
        encrypted bodies ship to the document store in one round trip."""
        return self.planner.insert_bulk(documents)

    def _generate_doc_id(self) -> str:
        for by_role in self._instances.values():
            for instance in by_role.values():
                if isinstance(instance, GatewayDocIDGen):
                    return instance.generate_doc_id()
        return random_doc_id()

    def cache_read_scope(self):
        """Per-operation document-cache view, or None (tier off, level
        off, or this schema not admitted to plaintext caching)."""
        tier = self.runtime.cache_tier
        if tier is None:
            return None
        return tier.read_scope(self.schema.name)

    def get_uncached(self, doc_id: str) -> dict[str, Value]:
        """The seed fetch+decrypt path, bypassing the cache tier.

        Read-modify-write paths (update/delete index maintenance) use
        this: they must see the authoritative stored version, not a
        bounded-staleness cached one.
        """
        stored = self.runtime.docs("get", doc_id=doc_id)
        return self._decrypt_stored(stored)

    def get(self, doc_id: str) -> dict[str, Value]:
        scope = self.cache_read_scope()
        if scope is None:
            return self.get_uncached(doc_id)
        from repro.cache.tier import MISS, NEGATIVE

        hit = scope.lookup(doc_id)
        if hit is NEGATIVE:
            raise DocumentNotFound(
                f"document {doc_id!r} not found"
            )
        if hit is not MISS:
            return hit
        try:
            document = self.get_uncached(doc_id)
        except (DocumentNotFound, RemoteError) as error:
            # A store-side miss crosses the RPC boundary as RemoteError
            # carrying the remote type name; both spellings are the
            # same known-absent fact and re-raise unchanged.
            if _is_not_found(error):
                scope.store_negative(doc_id)
            raise
        scope.store(doc_id, document)
        return document

    def _decrypt_stored(self, stored: dict) -> dict[str, Value]:
        if stored.get("schema") != self.schema.name:
            raise DocumentNotFound(
                f"{stored.get('_id')!r} belongs to schema "
                f"{stored.get('schema')!r}"
            )
        document = dict(stored.get("plain", {}))
        document.update(self._open_body(stored["body"]))
        document["_id"] = stored["_id"]
        return document

    def update(self, doc_id: str, changes: dict[str, Value]) -> None:
        self.planner.update(doc_id, changes)

    def delete(self, doc_id: str) -> bool:
        return self.planner.delete(doc_id)

    def _bool_terms(self, sensitive: dict[str, Value]) -> list[bytes]:
        terms = []
        if self._bool_instance is None:
            return terms
        for field, value in sensitive.items():
            if value is None:
                continue
            if any(
                instance is self._bool_instance
                for instance in self._field_instances(field)
            ):
                terms.append(self._bool_instance.term(field, value))
        return terms

    # -- search ------------------------------------------------------------------------

    def find(self, predicate: Predicate | None = None,
             verify: bool | None = None,
             limit: int | None = None) -> list[dict[str, Value]]:
        return self.planner.find(predicate, verify, limit)

    def find_ids(self, predicate: Predicate | None = None,
                 verify: bool | None = None) -> set[str]:
        return self.planner.find_ids(predicate, verify)

    def count(self, predicate: Predicate | None = None) -> int:
        return self.planner.count(predicate)

    # -- aggregates ---------------------------------------------------------------------------

    def aggregate(self, query: AggregateQuery) -> Value:
        return self.planner.aggregate(query)

    def find_sorted(self, field: str, limit: int | None = None,
                    descending: bool = False) -> list[dict[str, Value]]:
        """Documents ordered by a range-annotated field (ORDER BY)."""
        return self.planner.find_sorted(field, limit, descending)

    # -- async façade -------------------------------------------------------------------------
    #
    # One coroutine per sync operation, delegating to the planner's
    # async entry points.  Results are byte-identical to the sync path;
    # gateway-local work (crypto, planning) runs on worker threads via
    # ``asyncio.to_thread`` while the wire waits are native awaits, so a
    # single event loop interleaves many operations' network gaps.

    async def insert_async(self, document: dict[str, Value]) -> str:
        return (await self.planner.insert_bulk_async([document]))[0]

    async def insert_many_async(
        self, documents: list[dict[str, Value]]
    ) -> list[str]:
        return await self.planner.insert_bulk_async(documents)

    async def get_async(self, doc_id: str) -> dict[str, Value]:
        scope = self.cache_read_scope()
        if scope is not None:
            from repro.cache.tier import MISS, NEGATIVE

            # Hit validation may force a ledger re-sync over the wire;
            # keep it off the event loop.
            hit = await asyncio.to_thread(scope.lookup, doc_id)
            if hit is NEGATIVE:
                raise DocumentNotFound(
                    f"document {doc_id!r} not found"
                )
            if hit is not MISS:
                return hit
        try:
            stored = await self.runtime.transport.call_async(
                self.runtime.documents_service, "get", doc_id=doc_id
            )
            document = await asyncio.to_thread(
                self._decrypt_stored, stored
            )
        except (DocumentNotFound, RemoteError) as error:
            if scope is not None and _is_not_found(error):
                scope.store_negative(doc_id)
            raise
        if scope is not None:
            scope.store(doc_id, document)
        return document

    async def update_async(self, doc_id: str,
                           changes: dict[str, Value]) -> None:
        await self.planner.update_async(doc_id, changes)

    async def delete_async(self, doc_id: str) -> bool:
        return await self.planner.delete_async(doc_id)

    async def find_async(self, predicate: Predicate | None = None,
                         verify: bool | None = None,
                         limit: int | None = None
                         ) -> list[dict[str, Value]]:
        return await self.planner.find_async(predicate, verify, limit)

    async def find_ids_async(self, predicate: Predicate | None = None,
                             verify: bool | None = None) -> set[str]:
        return await self.planner.find_ids_async(predicate, verify)

    async def count_async(self, predicate: Predicate | None = None) -> int:
        return await self.planner.count_async(predicate)

    async def aggregate_async(self, query: AggregateQuery) -> Value:
        return await self.planner.aggregate_async(query)

    async def find_sorted_async(self, field: str,
                                limit: int | None = None,
                                descending: bool = False
                                ) -> list[dict[str, Value]]:
        return await self.planner.find_sorted_async(field, limit,
                                                    descending)

    # -- EXPLAIN ------------------------------------------------------------------------------

    def explain(self, **kwargs: Any) -> str:
        """Rendered plan (nodes, costs, leakage) without executing."""
        return self.planner.explain(**kwargs)
