"""Query planning and execution over one registered schema.

The executor is the middleware-core's "abstract execution of the
persistence logic" (§4.1): it binds a schema's field plans to live tactic
instances, routes every CRUD and search operation to the right gateway
SPI, and performs the gateway-side resolution steps — combining per-tactic
id sets, decrypting document bodies, and verifying candidates against the
plaintext predicate (the *<Read>* interfaces Table 1 folds into every
search operation).

Verification makes the whole pipeline sound under the approximations the
tactics are allowed: BIEX-ZMF false positives, stale entries from
insert-as-upsert range tactics and addition-only Sophos updates are all
trimmed here, so ``find`` always returns exactly the matching documents.

When a :class:`repro.net.batch.PipelineConfig` enables them, three
latency optimisations rewire the hot paths without changing results:
write operations collect their per-field index RPCs plus the
document-store write into one batch frame (a single round trip),
independent CNF literals resolve concurrently on a bounded thread pool,
and ``find`` prefetches the next ``get_many`` chunk while the previous
one decrypts.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from typing import Any, ContextManager

from repro.core.query import (
    AggregateQuery,
    And,
    Eq,
    Not,
    Or,
    Predicate,
    Range,
    evaluate_plain,
    to_cnf,
)
from repro.core.schema import Schema
from repro.core.selection import FieldPlan
from repro.crypto.encoding import Value
from repro.crypto.symmetric import Aead
from repro.errors import (
    DocumentNotFound,
    QueryError,
    RemoteError,
    UnsupportedOperation,
)
from repro.gateway.service import GatewayRuntime
from repro.net import message
from repro.net.batch import PipelineConfig
from repro.spi.interfaces import (
    GatewayDeletion,
    GatewayDocIDGen,
    GatewayInsertion,
    GatewayUpdate,
)
from repro.tactics.base import random_doc_id
from repro.tactics.biex import BiexGateway

BOOL_SCOPE_SUFFIX = "._bool"


class SchemaExecutor:
    """All persistence logic for one (application, schema) binding."""

    def __init__(self, runtime: GatewayRuntime, schema: Schema,
                 plans: dict[str, FieldPlan], verify_results: bool = True,
                 pad_bucket: int = 0,
                 pipeline: PipelineConfig | None = None):
        self.runtime = runtime
        self.schema = schema
        self.plans = plans
        self.verify_results = verify_results
        #: When positive, body plaintexts are padded up to a multiple of
        #: this many bytes before encryption, hiding exact value lengths
        #: from a snapshot adversary (the taxonomy's "things which can be
        #: hidden by padding").
        self.pad_bucket = pad_bucket
        self.pipeline = pipeline or runtime.pipeline
        self._collector = (
            runtime.batch_collector if self.pipeline.batch_writes else None
        )
        self._fanout_pool: ThreadPoolExecutor | None = None
        self._fanout_lock = threading.Lock()
        self._body_aead = Aead(
            runtime.keystore.derive(f"{schema.name}._body", "core", "aead")
        )
        self._instances: dict[str, dict[str, Any]] = {}
        self._bool_instance: BiexGateway | None = None
        self._load_instances()

    # -- instance wiring ---------------------------------------------------------

    def _bool_scope(self) -> str:
        return self.schema.name + BOOL_SCOPE_SUFFIX

    def _load_instances(self) -> None:
        registry = self.runtime.registry
        for field, plan in self.plans.items():
            by_role: dict[str, Any] = {}
            for role, tactic_name in plan.roles.items():
                if issubclass(registry.get(tactic_name).gateway_cls,
                              BiexGateway):
                    # Boolean tactics index cross-field terms, so a single
                    # instance is shared by every BL field of the schema.
                    scope = self._bool_scope()
                else:
                    scope = f"{self.schema.name}.{field}"
                instance = self.runtime.tactic(scope, tactic_name)
                by_role[role] = instance
                if isinstance(instance, BiexGateway):
                    self._bool_instance = instance
            self._instances[field] = by_role

    def _role_instance(self, field: str, role: str) -> Any | None:
        return self._instances.get(field, {}).get(role)

    def _field_instances(self, field: str) -> list[Any]:
        """Distinct tactic instances bound to a field."""
        seen: list[Any] = []
        for role in sorted(self._instances.get(field, {})):
            instance = self._instances[field][role]
            if all(instance is not s for s in seen):
                seen.append(instance)
        return seen

    # -- pipelining helpers --------------------------------------------------------

    def _write_batch(self) -> ContextManager[Any]:
        """Collection scope for one write operation's cloud RPCs.

        With batching enabled, everything the tactic halves and the
        document store are sent inside this scope crosses the wire as one
        batch frame; otherwise it is a no-op and every RPC stands alone.
        """
        if self._collector is None:
            return nullcontext()
        return self._collector.collect()

    def _pool(self) -> ThreadPoolExecutor | None:
        """Bounded worker pool for read-side fan-out (lazy, shared)."""
        workers = max(
            self.pipeline.fanout_workers,
            2 if self.pipeline.prefetch else 0,
        )
        if workers < 2:
            return None
        if self._fanout_pool is None:
            with self._fanout_lock:
                if self._fanout_pool is None:
                    self._fanout_pool = ThreadPoolExecutor(
                        max_workers=workers,
                        thread_name_prefix=f"fanout-{self.schema.name}",
                    )
        return self._fanout_pool

    # -- body encryption ------------------------------------------------------------

    def _seal_body(self, sensitive: dict[str, Value]) -> bytes:
        payload = message.encode(sensitive)
        if self.pad_bucket > 0:
            framed = len(payload).to_bytes(4, "big") + payload
            padded_length = -(-len(framed) // self.pad_bucket) * (
                self.pad_bucket
            )
            payload = framed + bytes(padded_length - len(framed))
        return self._body_aead.encrypt(payload)

    def _open_body(self, blob: bytes) -> dict[str, Value]:
        payload = self._body_aead.decrypt(blob)
        if self.pad_bucket > 0:
            length = int.from_bytes(payload[:4], "big")
            payload = payload[4:4 + length]
        return message.decode(payload)

    def _split_document(self, document: dict[str, Value]
                        ) -> tuple[dict[str, Value], dict[str, Value]]:
        sensitive: dict[str, Value] = {}
        plain: dict[str, Value] = {}
        for name, value in document.items():
            if name == "_id":
                continue
            spec = self.schema.fields.get(name)
            if spec is not None and spec.sensitive:
                sensitive[name] = value
            else:
                plain[name] = value
        return sensitive, plain

    # -- CRUD --------------------------------------------------------------------------

    def insert(self, document: dict[str, Value]) -> str:
        return self._insert_bulk([document])[0]

    def insert_many(self, documents: list[dict[str, Value]]) -> list[str]:
        """Bulk insert: tactic protocols run per document, but all the
        encrypted bodies ship to the document store in one round trip."""
        return self._insert_bulk(documents)

    def _insert_bulk(self, documents: list[dict[str, Value]]) -> list[str]:
        """The one per-field tactic loop behind ``insert``/``insert_many``.

        Under a write batch, every per-field index RPC *and* the final
        document-store write leave the gateway in a single batch frame.
        """
        stored = []
        doc_ids = []
        with self._write_batch():
            for document in documents:
                self.schema.validate(document)
                doc_id = document.get("_id") or self._generate_doc_id()
                sensitive, plain = self._split_document(document)
                bool_terms: list[bytes] = []
                for field, value in sensitive.items():
                    if value is None:
                        continue
                    for instance in self._field_instances(field):
                        if instance is self._bool_instance:
                            bool_terms.append(instance.term(field, value))
                        elif isinstance(instance, GatewayInsertion):
                            instance.insert(doc_id, value)
                if bool_terms and self._bool_instance is not None:
                    self._bool_instance.insert_terms(doc_id, bool_terms)
                stored.append({
                    "_id": doc_id,
                    "schema": self.schema.name,
                    "body": self._seal_body(sensitive),
                    "plain": plain,
                })
                doc_ids.append(doc_id)
            if stored:
                self.runtime.docs("insert_many", documents=stored)
        return doc_ids

    def _generate_doc_id(self) -> str:
        for by_role in self._instances.values():
            for instance in by_role.values():
                if isinstance(instance, GatewayDocIDGen):
                    return instance.generate_doc_id()
        return random_doc_id()

    def get(self, doc_id: str) -> dict[str, Value]:
        stored = self.runtime.docs("get", doc_id=doc_id)
        return self._decrypt_stored(stored)

    def _decrypt_stored(self, stored: dict) -> dict[str, Value]:
        if stored.get("schema") != self.schema.name:
            raise DocumentNotFound(
                f"{stored.get('_id')!r} belongs to schema "
                f"{stored.get('schema')!r}"
            )
        document = dict(stored.get("plain", {}))
        document.update(self._open_body(stored["body"]))
        document["_id"] = stored["_id"]
        return document

    def update(self, doc_id: str, changes: dict[str, Value]) -> None:
        old = self.get(doc_id)
        new = {k: v for k, v in old.items() if k != "_id"}
        new.update({k: v for k, v in changes.items() if k != "_id"})
        self.schema.validate(new)

        old_sensitive, _ = self._split_document(old)
        new_sensitive, new_plain = self._split_document(new)

        with self._write_batch():
            self._apply_update(doc_id, old_sensitive, new_sensitive,
                               new_plain)

    def _apply_update(self, doc_id: str,
                      old_sensitive: dict[str, Value],
                      new_sensitive: dict[str, Value],
                      new_plain: dict[str, Value]) -> None:
        bool_changed = False
        for field in set(old_sensitive) | set(new_sensitive):
            old_value = old_sensitive.get(field)
            new_value = new_sensitive.get(field)
            if old_value == new_value:
                continue
            for instance in self._field_instances(field):
                if instance is self._bool_instance:
                    bool_changed = True
                elif isinstance(instance, GatewayUpdate) and (
                    old_value is not None and new_value is not None
                ):
                    instance.update(doc_id, old_value, new_value)
                elif new_value is not None and isinstance(
                    instance, GatewayInsertion
                ):
                    if old_value is not None and isinstance(
                        instance, GatewayDeletion
                    ):
                        instance.delete(doc_id, old_value)
                    instance.insert(doc_id, new_value)
                elif new_value is None and old_value is not None and (
                    isinstance(instance, GatewayDeletion)
                ):
                    instance.delete(doc_id, old_value)
        if bool_changed and self._bool_instance is not None:
            self._bool_instance.update_terms(
                doc_id,
                self._bool_terms(old_sensitive),
                self._bool_terms(new_sensitive),
            )
        self.runtime.docs("replace", document={
            "_id": doc_id,
            "schema": self.schema.name,
            "body": self._seal_body(new_sensitive),
            "plain": new_plain,
        })

    def _bool_terms(self, sensitive: dict[str, Value]) -> list[bytes]:
        terms = []
        if self._bool_instance is None:
            return terms
        for field, value in sensitive.items():
            if value is None:
                continue
            if any(
                instance is self._bool_instance
                for instance in self._field_instances(field)
            ):
                terms.append(self._bool_instance.term(field, value))
        return terms

    def delete(self, doc_id: str) -> bool:
        try:
            old = self.get(doc_id)
        except (DocumentNotFound, RemoteError):
            return False
        old_sensitive, _ = self._split_document(old)
        with self._write_batch():
            for field, value in old_sensitive.items():
                if value is None:
                    continue
                for instance in self._field_instances(field):
                    if instance is self._bool_instance:
                        continue
                    if isinstance(instance, GatewayDeletion):
                        instance.delete(doc_id, value)
            if self._bool_instance is not None:
                terms = self._bool_terms(old_sensitive)
                if terms:
                    self._bool_instance.delete_terms(doc_id, terms)
            # The document-store delete needs its result, so under a
            # write batch it rides as the batch's final element (the
            # collector flushes and hands its result back).
            return bool(self.runtime.docs("delete", doc_id=doc_id))

    # -- search ------------------------------------------------------------------------

    def find(self, predicate: Predicate | None = None,
             verify: bool | None = None,
             limit: int | None = None) -> list[dict[str, Value]]:
        verify = self.verify_results if verify is None else verify
        if predicate is None:
            ids = set(self.runtime.docs("all_ids", schema=self.schema.name))
        else:
            ids = self._candidate_ids(predicate)
        documents: list[dict[str, Value]] = []
        candidate_ids = sorted(ids)
        # Fetch in chunks so a small limit does not pull the whole
        # candidate set across the wire.
        chunk_size = 64 if limit is None else max(limit * 2, 16)
        chunks = [
            candidate_ids[offset:offset + chunk_size]
            for offset in range(0, len(candidate_ids), chunk_size)
        ]
        pool = self._pool() if self.pipeline.prefetch else None

        def fetch(chunk: list[str]) -> list[dict]:
            return self.runtime.docs("get_many", doc_ids=chunk)

        pending: Future | None = None
        if pool is not None and chunks:
            pending = pool.submit(fetch, chunks[0])
        for index, chunk in enumerate(chunks):
            if pending is not None:
                stored = pending.result()
                # Overlap the next wire fetch with this chunk's
                # decryption and verification.
                pending = (
                    pool.submit(fetch, chunks[index + 1])
                    if index + 1 < len(chunks) else None
                )
            else:
                stored = fetch(chunk)
            for item in stored:
                if item.get("schema") != self.schema.name:
                    continue
                document = self._decrypt_stored(item)
                if verify and predicate is not None and not evaluate_plain(
                    predicate, document
                ):
                    continue
                documents.append(document)
                if limit is not None and len(documents) >= limit:
                    return documents
        return documents

    def find_ids(self, predicate: Predicate | None = None,
                 verify: bool | None = None) -> set[str]:
        verify = self.verify_results if verify is None else verify
        if verify or predicate is None:
            return {d["_id"] for d in self.find(predicate, verify=verify)}
        return self._candidate_ids(predicate)

    def count(self, predicate: Predicate | None = None) -> int:
        if predicate is None:
            return self.runtime.docs(
                "count", query={"schema": self.schema.name}
            )
        return len(self.find_ids(predicate))

    # -- candidate generation ------------------------------------------------------------

    def _candidate_ids(self, predicate: Predicate) -> set[str]:
        cnf = to_cnf(predicate)
        boolean_clauses: list[list[Eq]] = []
        other_clauses: list[list[Predicate]] = []
        for clause in cnf:
            if self._bool_instance is not None and all(
                isinstance(literal, Eq)
                and self._uses_bool_tactic(literal.field)
                for literal in clause
            ):
                boolean_clauses.append(clause)  # type: ignore[arg-type]
            else:
                other_clauses.append(clause)

        result: set[str] | None = None
        if boolean_clauses:
            cnf_terms = [
                [
                    self._bool_instance.term(literal.field, literal.value)
                    for literal in clause
                ]
                for clause in boolean_clauses
            ]
            raw = self._bool_instance.bool_query_terms(cnf_terms)
            result = self._bool_instance.resolve_bool(raw)

        # One `all_ids` fetch per evaluation, shared by every Not literal
        # (and safe under the concurrent fan-out below).
        all_ids = self._all_ids_once()

        pool = self._pool()
        literal_count = sum(len(clause) for clause in other_clauses)
        if (pool is not None and self.pipeline.fanout_workers > 1
                and literal_count > 1):
            # Fan out: independent literals resolve concurrently; the
            # TCP client pools one connection per worker thread, and the
            # in-proc latency model sleeps per thread, so wall-clock
            # cost is the slowest literal, not the sum.
            futures = [
                [pool.submit(self._literal_ids, literal, all_ids)
                 for literal in clause]
                for clause in other_clauses
            ]
            for clause_futures in futures:
                union: set[str] = set()
                for future in clause_futures:
                    union |= future.result()
                result = union if result is None else result & union
            return result if result is not None else set()

        for clause in other_clauses:
            if result is not None and not result:
                return set()  # short-circuit: intersection already empty
            union = set()
            for literal in clause:
                union |= self._literal_ids(literal, all_ids)
            result = union if result is None else result & union
        return result if result is not None else set()

    def _all_ids_once(self) -> Any:
        """A memoized, thread-safe fetch of the schema's full id list."""
        lock = threading.Lock()
        cache: list[set[str]] = []

        def fetch() -> set[str]:
            with lock:
                if not cache:
                    cache.append(set(self.runtime.docs(
                        "all_ids", schema=self.schema.name
                    )))
                return cache[0]

        return fetch

    def _uses_bool_tactic(self, field: str) -> bool:
        by_role = self._instances.get(field, {})
        return any(
            by_role.get(role) is self._bool_instance
            for role in ("bool", "eq")
        )

    def _literal_ids(self, literal: Predicate,
                     all_ids: Any | None = None) -> set[str]:
        if isinstance(literal, Not):
            if all_ids is None:
                all_ids = self._all_ids_once()
            return set(all_ids()) - self._literal_ids(literal.part, all_ids)
        if isinstance(literal, Eq):
            return self._eq_ids(literal)
        if isinstance(literal, Range):
            return self._range_ids(literal)
        raise QueryError(
            f"cannot execute literal of type {type(literal).__name__}"
        )

    def _eq_ids(self, literal: Eq) -> set[str]:
        spec = self.schema.fields.get(literal.field)
        if spec is None:
            raise QueryError(
                f"unknown field {literal.field!r} in schema "
                f"{self.schema.name!r}"
            )
        if not spec.sensitive:
            return set(self.runtime.docs("find_plain", query={
                "schema": self.schema.name,
                f"plain.{literal.field}": literal.value,
            }))
        instance = self._role_instance(literal.field, "eq")
        if instance is None:
            raise UnsupportedOperation(
                f"field {literal.field!r} is not annotated for equality "
                f"search (op EQ)"
            )
        if isinstance(instance, BiexGateway):
            # BIEX serves equality through its boolean protocol (it has no
            # separate EqResolution interface — Table 2 SPI surface), and
            # the shared cross-field instance needs the literal's field to
            # build the term.
            raw = instance.bool_query_terms(
                [[instance.term(literal.field, literal.value)]]
            )
            return instance.resolve_bool(raw)
        return instance.resolve_eq(instance.eq_query(literal.value))

    def _range_ids(self, literal: Range) -> set[str]:
        spec = self.schema.fields.get(literal.field)
        if spec is None:
            raise QueryError(
                f"unknown field {literal.field!r} in schema "
                f"{self.schema.name!r}"
            )
        if not spec.sensitive:
            bounds: dict[str, Value] = {}
            if literal.low is not None:
                bounds["$gte"] = literal.low
            if literal.high is not None:
                bounds["$lte"] = literal.high
            return set(self.runtime.docs("find_plain", query={
                "schema": self.schema.name,
                f"plain.{literal.field}": bounds,
            }))
        instance = self._role_instance(literal.field, "range")
        if instance is None:
            raise UnsupportedOperation(
                f"field {literal.field!r} is not annotated for range "
                f"search (op RG)"
            )
        return instance.range_query(literal.low, literal.high)

    # -- aggregates ---------------------------------------------------------------------------

    def aggregate(self, query: AggregateQuery) -> Value:
        role = f"agg:{query.function.value}"
        instance = self._role_instance(query.field, role)
        if instance is None:
            if query.function.value == "count":
                return self.count(query.where)
            raise UnsupportedOperation(
                f"field {query.field!r} is not annotated for aggregate "
                f"{query.function.value!r}"
            )
        if query.function.value in ("min", "max"):
            return self._extreme(query, instance)
        if query.where is None:
            doc_ids = sorted(
                self.runtime.docs("all_ids", schema=self.schema.name)
            )
        else:
            doc_ids = sorted(self.find_ids(query.where))
        return instance.aggregate(query.function.value, doc_ids)

    def _extreme(self, query: AggregateQuery, instance: Any) -> Value:
        """Min/max off the order tactic's sorted index.

        Candidates stream in value order; each is fetched, decrypted and
        verified (stale upsert entries or a filter predicate may discard
        the head of the list), and the first surviving value wins.
        """
        descending = query.function.value == "max"
        allowed: set[str] | None = None
        if query.where is not None:
            allowed = self.find_ids(query.where)
            if not allowed:
                return None
        offset = 0
        batch = 16
        ordered = instance.ordered_ids(descending=descending)
        while offset < len(ordered):
            chunk = ordered[offset:offset + batch]
            offset += batch
            candidates = [
                doc_id for doc_id in chunk
                if allowed is None or doc_id in allowed
            ]
            if not candidates:
                continue
            stored = self.runtime.docs("get_many", doc_ids=candidates)
            by_id = {item["_id"]: item for item in stored}
            for doc_id in candidates:
                item = by_id.get(doc_id)
                if item is None or item.get("schema") != self.schema.name:
                    continue
                document = self._decrypt_stored(item)
                value = document.get(query.field)
                if value is None:
                    continue
                # The index is insert-as-upsert, so live documents are
                # current; deleted ones were skipped by get_many above.
                return value
        return None

    def find_sorted(self, field: str, limit: int | None = None,
                    descending: bool = False) -> list[dict[str, Value]]:
        """Documents ordered by a range-annotated field (ORDER BY)."""
        instance = self._role_instance(field, "range")
        if instance is None:
            raise UnsupportedOperation(
                f"field {field!r} is not annotated for range/order "
                f"operations (op RG)"
            )
        ordered = instance.ordered_ids(descending=descending)
        results: list[dict[str, Value]] = []
        offset = 0
        while offset < len(ordered) and (limit is None
                                         or len(results) < limit):
            chunk = ordered[offset:offset + 32]
            offset += 32
            stored = self.runtime.docs("get_many", doc_ids=chunk)
            by_id = {item["_id"]: item for item in stored}
            for doc_id in chunk:
                item = by_id.get(doc_id)
                if item is None or item.get("schema") != self.schema.name:
                    continue
                results.append(self._decrypt_stored(item))
                if limit is not None and len(results) >= limit:
                    break
        return results
