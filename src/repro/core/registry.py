"""Tactic registry: the pluggable architecture's loading point.

Tactic providers register a :class:`repro.spi.descriptors.TacticDescriptor`
together with their gateway and cloud implementation classes.  The
middleware looks implementations up here and instantiates them lazily per
``(application, field, tactic)`` — the strategy-pattern "dynamic loading
at runtime" of §4.2.  The registry validates at registration time that
implementation classes actually implement the mandatory Setup SPI, so a
broken plugin fails fast rather than at first query.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import RegistryError
from repro.spi.descriptors import (
    Aggregate,
    Operation,
    TacticDescriptor,
    implemented_interfaces,
)
from repro.spi.interfaces import CloudSetup, GatewaySetup


@dataclass(frozen=True)
class TacticRegistration:
    descriptor: TacticDescriptor
    gateway_cls: type
    cloud_cls: type

    @property
    def name(self) -> str:
        return self.descriptor.name

    def spi_summary(self) -> dict[str, list[str]]:
        return {
            "gateway": implemented_interfaces(self.gateway_cls, "gateway"),
            "cloud": implemented_interfaces(self.cloud_cls, "cloud"),
        }


class TacticRegistry:
    """Thread-safe name -> registration mapping."""

    def __init__(self) -> None:
        self._registrations: dict[str, TacticRegistration] = {}
        self._lock = threading.RLock()

    def register(self, descriptor: TacticDescriptor, gateway_cls: type,
                 cloud_cls: type, replace: bool = False) -> None:
        if not issubclass(gateway_cls, GatewaySetup):
            raise RegistryError(
                f"{gateway_cls.__name__} does not implement the mandatory "
                f"gateway Setup interface"
            )
        if not issubclass(cloud_cls, CloudSetup):
            raise RegistryError(
                f"{cloud_cls.__name__} does not implement the mandatory "
                f"cloud Setup interface"
            )
        with self._lock:
            if descriptor.name in self._registrations and not replace:
                raise RegistryError(
                    f"tactic {descriptor.name!r} already registered"
                )
            self._registrations[descriptor.name] = TacticRegistration(
                descriptor, gateway_cls, cloud_cls
            )

    def unregister(self, name: str) -> None:
        with self._lock:
            if self._registrations.pop(name, None) is None:
                raise RegistryError(f"tactic {name!r} is not registered")

    def get(self, name: str) -> TacticRegistration:
        with self._lock:
            registration = self._registrations.get(name)
        if registration is None:
            raise RegistryError(f"tactic {name!r} is not registered")
        return registration

    def descriptor(self, name: str) -> TacticDescriptor:
        return self.get(name).descriptor

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._registrations)

    def all(self) -> list[TacticRegistration]:
        with self._lock:
            return [self._registrations[n] for n in sorted(self._registrations)]

    def supporting(self, operation: Operation) -> list[TacticDescriptor]:
        return [
            r.descriptor for r in self.all()
            if r.descriptor.supports(operation)
        ]

    def supporting_aggregate(self, aggregate: Aggregate
                             ) -> list[TacticDescriptor]:
        return [
            r.descriptor for r in self.all()
            if r.descriptor.supports_aggregate(aggregate)
        ]


_default_registry: TacticRegistry | None = None
_default_lock = threading.Lock()


def default_registry() -> TacticRegistry:
    """The process-wide registry with all built-in tactics loaded."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = TacticRegistry()
            from repro.tactics import register_builtin_tactics

            register_builtin_tactics(_default_registry)
        return _default_registry
