"""Adaptive tactic selection (the middleware-core's runtime strategy).

Given a field annotation — protection class + required operations +
aggregates — the selector picks concrete tactics from the registry:

1. Only tactics admissible for the field's class are considered (a tactic
   leaking more than the class tolerates is excluded; the weakest-link
   rule of §3.2 is thereby enforced *by construction*).
2. Among admissible candidates, the selector is **performance-first**: it
   prefers the tactic with the *highest* allowed protection class (weaker
   protection = cheaper crypto, and the application explicitly accepted
   that level), breaking ties with the descriptor's performance rank.
3. Operations are covered with as few tactics as possible: a boolean
   tactic that also serves equality is reused rather than adding a second
   scheme.

This policy reproduces the paper's §5.1 use-case table exactly — e.g.
``effective: C5, op [I,EQ,BL,RG]`` selects DET (equality + gateway-side
boolean) plus OPE (range), while ``status: C3, op [I,EQ,BL]`` must fall
back to BIEX-2Lev because DET's *equalities* leakage exceeds C3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.registry import TacticRegistry
from repro.core.schema import FieldAnnotation
from repro.errors import SelectionError
from repro.spi.descriptors import Aggregate, Operation, TacticDescriptor
from repro.spi.leakage import ProtectionClass, weakest_link
from repro.tactics.biex import BiexGateway

#: Cap on runner-up tactics recorded per role.  Every alternative must be
#: dual-indexed on the write path before the optimizer may route queries
#: to it, so the list stays short by design.
ALTERNATIVES_PER_ROLE = 2


@dataclass(frozen=True)
class FieldPlan:
    """The selection outcome for one sensitive field."""

    field: str
    annotation: FieldAnnotation
    #: role -> tactic name; roles: "eq", "bool", "range", "agg:<fn>".
    roles: dict[str, str]
    #: Reason strings per selected tactic (the 'Reason' column of §5.1).
    reasons: dict[str, str]
    #: role -> runner-up tactic names (same admissibility filters as the
    #: primary, same preference order, capped).  These are the *choices*
    #: the query optimizer's cost-based selection picks among at runtime
    #: when ``PipelineConfig.adaptive_selection`` is enabled; with it
    #: disabled they are inert documentation of what else was admissible.
    alternatives: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def tactic_names(self) -> list[str]:
        """Distinct tactics, in deterministic order."""
        seen: list[str] = []
        for role in sorted(self.roles):
            name = self.roles[role]
            if name not in seen:
                seen.append(name)
        return seen

    def tactic_for(self, role: str) -> str | None:
        return self.roles.get(role)

    def describe(self) -> str:
        tactics = ", ".join(self.tactic_names)
        return f"{self.field}: {tactics}"


class TacticSelector:
    """Selects tactics for field annotations against one registry."""

    def __init__(self, registry: TacticRegistry):
        self._registry = registry

    # -- public API -----------------------------------------------------------

    def plan_field(self, field_name: str,
                   annotation: FieldAnnotation) -> FieldPlan:
        roles: dict[str, str] = {}
        reasons: dict[str, str] = {}
        alternatives: dict[str, tuple[str, ...]] = {}

        admissible = self._admissible(annotation.protection_class)
        if not admissible:
            raise SelectionError(
                f"field {field_name!r}: no tactic admissible at class "
                f"C{int(annotation.protection_class)}"
            )

        if annotation.requires(Operation.BOOLEAN):
            chosen = self._best(
                [d for d in admissible if d.supports(Operation.BOOLEAN)],
                field_name, Operation.BOOLEAN,
            )
            roles["bool"] = chosen.name
            reasons[chosen.name] = (
                "boolean & cross-field search"
                if Operation.BOOLEAN in chosen.operations
                else "boolean via equality tokens, combined at the gateway"
            )

        if annotation.requires(Operation.EQUALITY):
            bool_choice = roles.get("bool")
            if bool_choice is not None and self._registry.descriptor(
                bool_choice
            ).supports(Operation.EQUALITY):
                roles["eq"] = bool_choice
            else:
                eq_candidates = [d for d in admissible
                                 if d.supports(Operation.EQUALITY)]
                chosen = self._best(
                    eq_candidates, field_name, Operation.EQUALITY,
                )
                roles["eq"] = chosen.name
                reasons.setdefault(
                    chosen.name,
                    self._class_reason(chosen),
                )
                runners = self._runners_up(eq_candidates, chosen.name)
                if runners:
                    alternatives["eq"] = runners

        if annotation.requires(Operation.RANGE):
            range_candidates = [d for d in admissible
                                if d.supports(Operation.RANGE)]
            chosen = self._best(
                range_candidates, field_name, Operation.RANGE,
            )
            roles["range"] = chosen.name
            reasons.setdefault(chosen.name, "range queries")
            runners = self._runners_up(range_candidates, chosen.name)
            if runners:
                alternatives["range"] = runners

        for aggregate in sorted(annotation.aggregates, key=lambda a: a.value):
            if aggregate in (Aggregate.MIN, Aggregate.MAX):
                # Order tactics serve min/max off their sorted index
                # (Fig. 2 lists minimum/maximum among the aggregate
                # functions); reuse the range tactic when one is selected.
                if "range" in roles:
                    chosen = self._registry.descriptor(roles["range"])
                else:
                    chosen = self._best(
                        [d for d in admissible
                         if d.supports(Operation.RANGE)],
                        field_name, Operation.RANGE,
                    )
                roles[f"agg:{aggregate.value}"] = chosen.name
                reasons.setdefault(chosen.name,
                                   "min/max off the order index")
                continue
            candidates = [
                d for d in self._registry.supporting_aggregate(aggregate)
                if d.admissible_for(annotation.protection_class)
            ]
            chosen = self._best_aggregate(candidates, field_name, aggregate)
            roles[f"agg:{aggregate.value}"] = chosen.name
            reasons.setdefault(chosen.name, "cloud-side aggregation")

        if not roles:
            # Insert-only field: protect the stored value with the most
            # secure admissible value tactic (the paper's `performer: C1,
            # op [I]` -> RND case).
            chosen = self._most_secure(admissible, field_name)
            roles["store"] = chosen.name
            reasons[chosen.name] = self._class_reason(chosen)

        plan = FieldPlan(field_name, annotation, roles, reasons,
                         alternatives)
        self._check_weakest_link(plan)
        return plan

    def plan_schema(self, schema) -> dict[str, FieldPlan]:
        """Plan every sensitive field of a schema."""
        return {
            spec.name: self.plan_field(spec.name, spec.annotation)
            for spec in schema.sensitive_fields()
        }

    # -- internals ----------------------------------------------------------------

    def _admissible(self, protection_class: ProtectionClass
                    ) -> list[TacticDescriptor]:
        return [
            r.descriptor for r in self._registry.all()
            if r.descriptor.admissible_for(protection_class)
        ]

    @staticmethod
    def _class_reason(descriptor: TacticDescriptor) -> str:
        if descriptor.protection_class is None:
            return "aggregate-only tactic"
        return (
            f"{descriptor.leakage.level.label.lower()} protection level"
        )

    def _best(self, candidates: list[TacticDescriptor], field_name: str,
              operation: Operation) -> TacticDescriptor:
        candidates = [c for c in candidates if c.protection_class is not None]
        if not candidates:
            raise SelectionError(
                f"field {field_name!r}: no admissible tactic supports "
                f"{operation.name}"
            )
        return min(
            candidates,
            key=lambda d: (-int(d.protection_class), d.performance.rank),
        )

    def _runners_up(self, candidates: list[TacticDescriptor],
                    chosen_name: str) -> tuple[str, ...]:
        """Admissible runner-up tactics for one role, preference order.

        Tactics served through the schema-wide shared boolean instance
        (BIEX variants) are excluded — swapping a per-literal lookup onto
        the cross-field instance is not a like-for-like substitution —
        and a boolean-served primary admits no alternatives at all.
        """
        if issubclass(self._registry.get(chosen_name).gateway_cls,
                      BiexGateway):
            return ()
        ranked = sorted(
            [c for c in candidates if c.protection_class is not None],
            key=lambda d: (-int(d.protection_class), d.performance.rank),
        )
        names: list[str] = []
        for descriptor in ranked:
            if descriptor.name == chosen_name:
                continue
            if issubclass(self._registry.get(descriptor.name).gateway_cls,
                          BiexGateway):
                continue
            names.append(descriptor.name)
            if len(names) >= ALTERNATIVES_PER_ROLE:
                break
        return tuple(names)

    def _best_aggregate(self, candidates: list[TacticDescriptor],
                        field_name: str,
                        aggregate: Aggregate) -> TacticDescriptor:
        if not candidates:
            raise SelectionError(
                f"field {field_name!r}: no tactic supports aggregate "
                f"{aggregate.value!r}"
            )
        return min(candidates, key=lambda d: d.performance.rank)

    def _most_secure(self, candidates: list[TacticDescriptor],
                     field_name: str) -> TacticDescriptor:
        storable = [
            c for c in candidates
            if c.protection_class is not None
            and Operation.INSERT in c.operations
        ]
        if not storable:
            raise SelectionError(
                f"field {field_name!r}: no admissible storage tactic"
            )
        return min(
            storable,
            key=lambda d: (int(d.protection_class), d.performance.rank),
        )

    def _check_weakest_link(self, plan: FieldPlan) -> None:
        levels = [
            self._registry.descriptor(name).leakage.level
            for name in plan.tactic_names
            if self._registry.descriptor(name).protection_class is not None
        ]
        if not levels:
            return
        effective = weakest_link(levels)
        if not plan.annotation.protection_class.tolerates(effective):
            raise SelectionError(
                f"field {plan.field!r}: selected tactics leak "
                f"{effective.label}, above class "
                f"C{int(plan.annotation.protection_class)}"
            )
