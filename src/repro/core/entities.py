"""The *Entities* interface: the data-access API applications program to.

Fig. 3 exposes three gateway interfaces to the trusted-zone applications;
``Entities`` is the data one — regular CRUD plus the search and aggregate
operations of the Fig. 2 model.  It is a thin façade over the
:class:`repro.core.executor.SchemaExecutor`; applications never touch
keys, tactics or ciphertexts.
"""

from __future__ import annotations

from repro.core.executor import SchemaExecutor
from repro.core.query import AggregateQuery, Eq, Predicate, Range
from repro.crypto.encoding import Value
from repro.spi.descriptors import Aggregate


class Entities:
    """CRUD + search + aggregates over one registered schema.

    >>> entities = middleware.entities("observation")   # doctest: +SKIP
    >>> doc_id = entities.insert({"status": "final", "value": 6.3})
    >>> entities.find(Eq("status", "final"))
    """

    def __init__(self, executor: SchemaExecutor):
        self._executor = executor

    @property
    def schema_name(self) -> str:
        return self._executor.schema.name

    # -- CRUD -----------------------------------------------------------------

    def insert(self, document: dict[str, Value]) -> str:
        """Insert a document; returns its (possibly generated) id."""
        return self._executor.insert(document)

    def insert_many(self, documents: list[dict[str, Value]]) -> list[str]:
        """Bulk insert; encrypted bodies ship in one round trip."""
        return self._executor.insert_many(documents)

    def get(self, doc_id: str) -> dict[str, Value]:
        """Fetch and decrypt one document by id."""
        return self._executor.get(doc_id)

    def update(self, doc_id: str, changes: dict[str, Value]) -> None:
        """Merge ``changes`` into the stored document and re-index."""
        self._executor.update(doc_id, changes)

    def delete(self, doc_id: str) -> bool:
        """Delete a document; returns whether it existed."""
        return self._executor.delete(doc_id)

    # -- search ------------------------------------------------------------------

    def find(self, predicate: Predicate | None = None,
             verify: bool | None = None,
             limit: int | None = None) -> list[dict[str, Value]]:
        """Search; returns decrypted documents.

        With ``verify`` left at its default, candidates are re-checked
        against the plaintext predicate after decryption, so results are
        exact regardless of tactic approximations.  ``limit`` bounds both
        the result set and the candidate transfer.
        """
        return self._executor.find(predicate, verify=verify, limit=limit)

    def find_one(self, predicate: Predicate) -> dict[str, Value] | None:
        results = self._executor.find(predicate, limit=1)
        return results[0] if results else None

    def find_ids(self, predicate: Predicate | None = None) -> set[str]:
        return self._executor.find_ids(predicate)

    def count(self, predicate: Predicate | None = None) -> int:
        return self._executor.count(predicate)

    # -- aggregates ----------------------------------------------------------------

    def aggregate(self, query: AggregateQuery) -> Value:
        """Run an aggregate (cloud-side homomorphic evaluation)."""
        return self._executor.aggregate(query)

    def average(self, field: str,
                where: Predicate | None = None) -> Value:
        return self.aggregate(AggregateQuery(Aggregate.AVG, field, where))

    def sum(self, field: str, where: Predicate | None = None) -> Value:
        return self.aggregate(AggregateQuery(Aggregate.SUM, field, where))

    def min(self, field: str, where: Predicate | None = None) -> Value:
        """Smallest value, served off the order tactic's sorted index."""
        return self.aggregate(AggregateQuery(Aggregate.MIN, field, where))

    def max(self, field: str, where: Predicate | None = None) -> Value:
        """Largest value, served off the order tactic's sorted index."""
        return self.aggregate(AggregateQuery(Aggregate.MAX, field, where))

    def find_sorted(self, field: str, limit: int | None = None,
                    descending: bool = False) -> list[dict[str, Value]]:
        """Documents ordered by a range-annotated field (ORDER BY)."""
        return self._executor.find_sorted(field, limit=limit,
                                          descending=descending)

    def text_search(self, query: str, limit: int = 10,
                    require_all: bool = False) -> list[dict[str, Value]]:
        """Ranked full-text search over *non-sensitive* string fields.

        Sensitive fields never reach the cloud's text index (they travel
        as an opaque encrypted body), so this searches exactly what the
        schema chose to leave public.
        """
        hits = self._executor.runtime.docs(
            "find_text", query=query, limit=limit,
            require_all=require_all,
        )
        ids = [doc_id for doc_id, _ in hits]
        stored = self._executor.runtime.docs("get_many", doc_ids=ids)
        by_id = {item["_id"]: item for item in stored}
        results = []
        for doc_id in ids:
            item = by_id.get(doc_id)
            if item is None or item.get("schema") != self.schema_name:
                continue
            results.append(self._executor._decrypt_stored(item))
        return results

    # -- query planning -----------------------------------------------------------

    def explain(self, predicate: Predicate | None = None,
                **kwargs) -> str:
        """Rendered query plan (no execution); see ``DataBlinder.explain``."""
        return self._executor.explain(predicate=predicate, **kwargs)

    # -- convenience predicates -------------------------------------------------------

    @staticmethod
    def eq(field: str, value: Value) -> Eq:
        return Eq(field, value)

    @staticmethod
    def between(field: str, low: Value, high: Value) -> Range:
        return Range(field, low, high)


class AsyncEntities:
    """The coroutine flavour of :class:`Entities`.

    Same operations, same results, awaitable: each method delegates to
    the executor's async path, which keeps gateway-local crypto on
    worker threads and awaits the wire natively so one event loop can
    interleave many concurrent operations.  Obtain instances from the
    async gateway runtime — the two façades share the executor, plan
    cache and write pipeline, so sync and async callers may be mixed
    freely on one application.
    """

    def __init__(self, executor: SchemaExecutor):
        self._executor = executor

    @property
    def schema_name(self) -> str:
        return self._executor.schema.name

    # -- CRUD -----------------------------------------------------------------

    async def insert(self, document: dict[str, Value]) -> str:
        return await self._executor.insert_async(document)

    async def insert_many(
        self, documents: list[dict[str, Value]]
    ) -> list[str]:
        return await self._executor.insert_many_async(documents)

    async def get(self, doc_id: str) -> dict[str, Value]:
        return await self._executor.get_async(doc_id)

    async def update(self, doc_id: str,
                     changes: dict[str, Value]) -> None:
        await self._executor.update_async(doc_id, changes)

    async def delete(self, doc_id: str) -> bool:
        return await self._executor.delete_async(doc_id)

    # -- search ------------------------------------------------------------------

    async def find(self, predicate: Predicate | None = None,
                   verify: bool | None = None,
                   limit: int | None = None) -> list[dict[str, Value]]:
        return await self._executor.find_async(
            predicate, verify=verify, limit=limit
        )

    async def find_one(self,
                       predicate: Predicate) -> dict[str, Value] | None:
        results = await self._executor.find_async(predicate, limit=1)
        return results[0] if results else None

    async def find_ids(self,
                       predicate: Predicate | None = None) -> set[str]:
        return await self._executor.find_ids_async(predicate)

    async def count(self, predicate: Predicate | None = None) -> int:
        return await self._executor.count_async(predicate)

    # -- aggregates ----------------------------------------------------------------

    async def aggregate(self, query: AggregateQuery) -> Value:
        return await self._executor.aggregate_async(query)

    async def average(self, field: str,
                      where: Predicate | None = None) -> Value:
        return await self.aggregate(
            AggregateQuery(Aggregate.AVG, field, where)
        )

    async def sum(self, field: str,
                  where: Predicate | None = None) -> Value:
        return await self.aggregate(
            AggregateQuery(Aggregate.SUM, field, where)
        )

    async def min(self, field: str,
                  where: Predicate | None = None) -> Value:
        return await self.aggregate(
            AggregateQuery(Aggregate.MIN, field, where)
        )

    async def max(self, field: str,
                  where: Predicate | None = None) -> Value:
        return await self.aggregate(
            AggregateQuery(Aggregate.MAX, field, where)
        )

    async def find_sorted(self, field: str, limit: int | None = None,
                          descending: bool = False
                          ) -> list[dict[str, Value]]:
        return await self._executor.find_sorted_async(
            field, limit=limit, descending=descending
        )

    # -- convenience predicates -------------------------------------------------------

    @staticmethod
    def eq(field: str, value: Value) -> Eq:
        return Eq(field, value)

    @staticmethod
    def between(field: str, low: Value, high: Value) -> Range:
        return Range(field, low, high)
