"""Middleware core: the paper's primary contribution.

Schemas and annotations (Fig. 2), adaptive tactic selection, policy
enforcement, the query executor and the DataBlinder facade.
"""

from repro.core.entities import Entities
from repro.core.middleware import DataBlinder
from repro.core.query import (
    AggregateQuery,
    And,
    Eq,
    Not,
    Or,
    Predicate,
    Range,
)
from repro.core.registry import TacticRegistry, default_registry
from repro.core.schema import FieldAnnotation, FieldSpec, Schema
from repro.core.selection import FieldPlan, TacticSelector

__all__ = [
    "AggregateQuery",
    "And",
    "DataBlinder",
    "Entities",
    "Eq",
    "FieldAnnotation",
    "FieldPlan",
    "FieldSpec",
    "Not",
    "Or",
    "Predicate",
    "Range",
    "Schema",
    "TacticRegistry",
    "TacticSelector",
    "default_registry",
]
