"""The pre-planner read path, preserved verbatim as a reference oracle.

Before the planner refactor, :class:`repro.core.executor.SchemaExecutor`
resolved queries directly (CNF split, per-literal index lookups, chunked
fetch, decrypt, verify).  That logic lives on here, bound to the same
executor wiring, so the equivalence test sweep can run every query
through *both* paths against the *same* deployment and assert identical
results.  It is test infrastructure, not a supported API; nothing in the
middleware routes through it.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.executor import SchemaExecutor
from repro.core.query import (
    AggregateQuery,
    Eq,
    Not,
    Predicate,
    Range,
    evaluate_plain,
    to_cnf,
)
from repro.crypto.encoding import Value
from repro.errors import QueryError, UnsupportedOperation
from repro.tactics.biex import BiexGateway


class LegacyReadPath:
    """Seed-era query resolution over an executor's live instances."""

    def __init__(self, executor: SchemaExecutor):
        self._x = executor

    # -- search ----------------------------------------------------------------

    def find(self, predicate: Predicate | None = None,
             verify: bool | None = None,
             limit: int | None = None) -> list[dict[str, Value]]:
        x = self._x
        verify = x.verify_results if verify is None else verify
        if predicate is None:
            ids = set(x.runtime.docs("all_ids", schema=x.schema.name))
        else:
            ids = self._candidate_ids(predicate)
        documents: list[dict[str, Value]] = []
        candidate_ids = sorted(ids)
        chunk_size = 64 if limit is None else max(limit * 2, 16)
        for offset in range(0, len(candidate_ids), chunk_size):
            chunk = candidate_ids[offset:offset + chunk_size]
            stored = x.runtime.docs("get_many", doc_ids=chunk)
            for item in stored:
                if item.get("schema") != x.schema.name:
                    continue
                document = x._decrypt_stored(item)
                if verify and predicate is not None and not evaluate_plain(
                    predicate, document
                ):
                    continue
                documents.append(document)
                if limit is not None and len(documents) >= limit:
                    return documents
        return documents

    def find_ids(self, predicate: Predicate | None = None,
                 verify: bool | None = None) -> set[str]:
        x = self._x
        verify = x.verify_results if verify is None else verify
        if verify or predicate is None:
            return {d["_id"] for d in self.find(predicate, verify=verify)}
        return self._candidate_ids(predicate)

    def count(self, predicate: Predicate | None = None) -> int:
        x = self._x
        if predicate is None:
            return x.runtime.docs("count", query={"schema": x.schema.name})
        return len(self.find_ids(predicate))

    # -- candidate generation --------------------------------------------------

    def _candidate_ids(self, predicate: Predicate) -> set[str]:
        x = self._x
        cnf = to_cnf(predicate)
        boolean_clauses: list[list[Eq]] = []
        other_clauses: list[list[Predicate]] = []
        for clause in cnf:
            if x._bool_instance is not None and all(
                isinstance(literal, Eq)
                and x._uses_bool_tactic(literal.field)
                for literal in clause
            ):
                boolean_clauses.append(clause)  # type: ignore[arg-type]
            else:
                other_clauses.append(clause)

        result: set[str] | None = None
        if boolean_clauses:
            cnf_terms = [
                [
                    x._bool_instance.term(literal.field, literal.value)
                    for literal in clause
                ]
                for clause in boolean_clauses
            ]
            raw = x._bool_instance.bool_query_terms(cnf_terms)
            result = x._bool_instance.resolve_bool(raw)

        all_ids = self._all_ids_once()

        for clause in other_clauses:
            if result is not None and not result:
                return set()
            union: set[str] = set()
            for literal in clause:
                union |= self._literal_ids(literal, all_ids)
            result = union if result is None else result & union
        return result if result is not None else set()

    def _all_ids_once(self) -> Any:
        lock = threading.Lock()
        cache: list[set[str]] = []
        x = self._x

        def fetch() -> set[str]:
            with lock:
                if not cache:
                    cache.append(set(x.runtime.docs(
                        "all_ids", schema=x.schema.name
                    )))
                return cache[0]

        return fetch

    def _literal_ids(self, literal: Predicate,
                     all_ids: Any | None = None) -> set[str]:
        if isinstance(literal, Not):
            if all_ids is None:
                all_ids = self._all_ids_once()
            return set(all_ids()) - self._literal_ids(literal.part, all_ids)
        if isinstance(literal, Eq):
            return self._eq_ids(literal)
        if isinstance(literal, Range):
            return self._range_ids(literal)
        raise QueryError(
            f"cannot execute literal of type {type(literal).__name__}"
        )

    def _eq_ids(self, literal: Eq) -> set[str]:
        x = self._x
        spec = x.schema.fields.get(literal.field)
        if spec is None:
            raise QueryError(
                f"unknown field {literal.field!r} in schema "
                f"{x.schema.name!r}"
            )
        if not spec.sensitive:
            return set(x.runtime.docs("find_plain", query={
                "schema": x.schema.name,
                f"plain.{literal.field}": literal.value,
            }))
        instance = x._role_instance(literal.field, "eq")
        if instance is None:
            raise UnsupportedOperation(
                f"field {literal.field!r} is not annotated for equality "
                f"search (op EQ)"
            )
        if isinstance(instance, BiexGateway):
            raw = instance.bool_query_terms(
                [[instance.term(literal.field, literal.value)]]
            )
            return instance.resolve_bool(raw)
        return instance.resolve_eq(instance.eq_query(literal.value))

    def _range_ids(self, literal: Range) -> set[str]:
        x = self._x
        spec = x.schema.fields.get(literal.field)
        if spec is None:
            raise QueryError(
                f"unknown field {literal.field!r} in schema "
                f"{x.schema.name!r}"
            )
        if not spec.sensitive:
            bounds: dict[str, Value] = {}
            if literal.low is not None:
                bounds["$gte"] = literal.low
            if literal.high is not None:
                bounds["$lte"] = literal.high
            return set(x.runtime.docs("find_plain", query={
                "schema": x.schema.name,
                f"plain.{literal.field}": bounds,
            }))
        instance = x._role_instance(literal.field, "range")
        if instance is None:
            raise UnsupportedOperation(
                f"field {literal.field!r} is not annotated for range "
                f"search (op RG)"
            )
        return instance.range_query(literal.low, literal.high)

    # -- aggregates ------------------------------------------------------------

    def aggregate(self, query: AggregateQuery) -> Value:
        x = self._x
        role = f"agg:{query.function.value}"
        instance = x._role_instance(query.field, role)
        if instance is None:
            if query.function.value == "count":
                return self.count(query.where)
            raise UnsupportedOperation(
                f"field {query.field!r} is not annotated for aggregate "
                f"{query.function.value!r}"
            )
        if query.function.value in ("min", "max"):
            return self._extreme(query, instance)
        if query.where is None:
            doc_ids = sorted(
                x.runtime.docs("all_ids", schema=x.schema.name)
            )
        else:
            doc_ids = sorted(self.find_ids(query.where))
        return instance.aggregate(query.function.value, doc_ids)

    def _extreme(self, query: AggregateQuery, instance: Any) -> Value:
        x = self._x
        descending = query.function.value == "max"
        allowed: set[str] | None = None
        if query.where is not None:
            allowed = self.find_ids(query.where)
            if not allowed:
                return None
        offset = 0
        batch = 16
        ordered = instance.ordered_ids(descending=descending)
        while offset < len(ordered):
            chunk = ordered[offset:offset + batch]
            offset += batch
            candidates = [
                doc_id for doc_id in chunk
                if allowed is None or doc_id in allowed
            ]
            if not candidates:
                continue
            stored = x.runtime.docs("get_many", doc_ids=candidates)
            by_id = {item["_id"]: item for item in stored}
            for doc_id in candidates:
                item = by_id.get(doc_id)
                if item is None or item.get("schema") != x.schema.name:
                    continue
                document = x._decrypt_stored(item)
                value = document.get(query.field)
                if value is None:
                    continue
                return value
        return None

    def find_sorted(self, field: str, limit: int | None = None,
                    descending: bool = False) -> list[dict[str, Value]]:
        x = self._x
        instance = x._role_instance(field, "range")
        if instance is None:
            raise UnsupportedOperation(
                f"field {field!r} is not annotated for range/order "
                f"operations (op RG)"
            )
        ordered = instance.ordered_ids(descending=descending)
        results: list[dict[str, Value]] = []
        offset = 0
        while offset < len(ordered) and (limit is None
                                         or len(results) < limit):
            chunk = ordered[offset:offset + 32]
            offset += 32
            stored = x.runtime.docs("get_many", doc_ids=chunk)
            by_id = {item["_id"]: item for item in stored}
            for doc_id in chunk:
                item = by_id.get(doc_id)
                if item is None or item.get("schema") != x.schema.name:
                    continue
                results.append(x._decrypt_stored(item))
                if limit is not None and len(results) >= limit:
                    break
        return results
