"""Schemas and field annotations: the *Schema* interface of the gateway.

Applications "define and annotate data schemas and data protection
metadata" (§4).  A :class:`Schema` names the document type, declares its
fields, and attaches a :class:`FieldAnnotation` to each sensitive field —
the Fig. 2 model: a protection class plus the required data-access
operations and aggregate functions.

The §5.1 FHIR Observation example annotates, e.g.::

    value: C3, op [I, EQ, BL], agg [avg]

which this module spells::

    FieldAnnotation.parse("C3", ops="I,EQ,BL", aggs="avg")
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.crypto.encoding import Value
from repro.errors import SchemaError, SchemaValidationError
from repro.spi.descriptors import Aggregate, Operation
from repro.spi.leakage import ProtectionClass

_SCALAR_TYPES = {
    "string": str,
    "int": int,
    "float": (int, float),
    "bool": bool,
    "bytes": bytes,
}


@dataclass(frozen=True)
class FieldAnnotation:
    """Protection requirements of one sensitive field (Fig. 2)."""

    protection_class: ProtectionClass
    operations: frozenset[Operation]
    aggregates: frozenset[Aggregate] = frozenset()

    @classmethod
    def parse(cls, protection_class: ProtectionClass | int | str,
              ops: str | list[str] = "I",
              aggs: str | list[str] = ()) -> "FieldAnnotation":
        """Parse the paper's compact annotation notation."""
        if isinstance(ops, str):
            ops = [o for o in ops.replace(" ", "").split(",") if o]
        if isinstance(aggs, str):
            aggs = [a for a in aggs.replace(" ", "").split(",") if a]
        operations = frozenset(Operation.parse(o) for o in ops)
        if Operation.INSERT not in operations:
            raise SchemaError(
                "every sensitive field must allow insertion (op I)"
            )
        return cls(
            protection_class=ProtectionClass.parse(protection_class),
            operations=operations,
            aggregates=frozenset(Aggregate.parse(a) for a in aggs),
        )

    def requires(self, operation: Operation) -> bool:
        return operation in self.operations

    def describe(self) -> str:
        ops = ",".join(sorted(o.value for o in self.operations))
        text = f"C{int(self.protection_class)}, op [{ops}]"
        if self.aggregates:
            aggs = ",".join(sorted(a.value for a in self.aggregates))
            text += f", agg [{aggs}]"
        return text


@dataclass(frozen=True)
class FieldSpec:
    """One declared document field."""

    name: str
    field_type: str = "string"
    required: bool = False
    annotation: FieldAnnotation | None = None

    def __post_init__(self) -> None:
        if self.field_type not in _SCALAR_TYPES:
            raise SchemaError(
                f"field {self.name!r}: unknown type {self.field_type!r} "
                f"(expected one of {sorted(_SCALAR_TYPES)})"
            )

    @property
    def sensitive(self) -> bool:
        return self.annotation is not None

    def validate_value(self, value: Value) -> None:
        if value is None:
            if self.required:
                raise SchemaValidationError(
                    f"required field {self.name!r} is missing"
                )
            return
        expected = _SCALAR_TYPES[self.field_type]
        if isinstance(value, bool) and self.field_type != "bool":
            raise SchemaValidationError(
                f"field {self.name!r}: expected {self.field_type}, got bool"
            )
        if not isinstance(value, expected):
            raise SchemaValidationError(
                f"field {self.name!r}: expected {self.field_type}, "
                f"got {type(value).__name__}"
            )


class Schema:
    """A named document schema with per-field protection annotations."""

    def __init__(self, name: str, fields: list[FieldSpec]):
        if not name:
            raise SchemaError("schema name must be non-empty")
        if not fields:
            raise SchemaError("schema must declare at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate field names in schema")
        self.name = name
        self.fields: dict[str, FieldSpec] = {f.name: f for f in fields}

    # -- construction helpers ------------------------------------------------

    @classmethod
    def define(cls, name: str, /,
               **fields: "FieldSpec | tuple | str") -> "Schema":
        """Compact schema construction.

        Values may be a :class:`FieldSpec`, a bare type string for
        non-sensitive fields, or ``(type, FieldAnnotation)`` for sensitive
        ones::

            Schema.define(
                "observation",
                id="string",
                value=("float", FieldAnnotation.parse("C3", "I,EQ,BL",
                                                      "avg")),
            )
        """
        specs = []
        for field_name, spec in fields.items():
            if isinstance(spec, FieldSpec):
                specs.append(spec)
            elif isinstance(spec, str):
                specs.append(FieldSpec(field_name, spec))
            elif isinstance(spec, tuple) and len(spec) == 2:
                field_type, annotation = spec
                specs.append(
                    FieldSpec(field_name, field_type, annotation=annotation)
                )
            else:
                raise SchemaError(
                    f"field {field_name!r}: cannot interpret spec {spec!r}"
                )
        return cls(name, specs)

    # -- queries over the schema ------------------------------------------------

    def sensitive_fields(self) -> list[FieldSpec]:
        return [f for f in self.fields.values() if f.sensitive]

    def plain_fields(self) -> list[FieldSpec]:
        return [f for f in self.fields.values() if not f.sensitive]

    def annotation(self, field_name: str) -> FieldAnnotation:
        spec = self.fields.get(field_name)
        if spec is None:
            raise SchemaError(
                f"schema {self.name!r} has no field {field_name!r}"
            )
        if spec.annotation is None:
            raise SchemaError(f"field {field_name!r} is not sensitive")
        return spec.annotation

    # -- document validation ------------------------------------------------------

    def validate(self, document: dict[str, Value]) -> None:
        """Check a document against the schema (schema management's
        validation duty, §4.1)."""
        unknown = set(document) - set(self.fields) - {"_id"}
        if unknown:
            raise SchemaValidationError(
                f"unknown fields {sorted(unknown)} for schema {self.name!r}"
            )
        for spec in self.fields.values():
            spec.validate_value(document.get(spec.name))

    # -- (de)serialisation for the metadata subsystem ---------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fields": [
                {
                    "name": f.name,
                    "type": f.field_type,
                    "required": f.required,
                    "annotation": None if f.annotation is None else {
                        "class": int(f.annotation.protection_class),
                        "ops": sorted(
                            o.value for o in f.annotation.operations
                        ),
                        "aggs": sorted(
                            a.value for a in f.annotation.aggregates
                        ),
                    },
                }
                for f in self.fields.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        specs = []
        for item in data["fields"]:
            annotation = None
            if item.get("annotation"):
                raw = item["annotation"]
                annotation = FieldAnnotation.parse(
                    raw["class"], raw["ops"], raw.get("aggs", ())
                )
            specs.append(
                FieldSpec(item["name"], item["type"],
                          item.get("required", False), annotation)
            )
        return cls(data["name"], specs)
