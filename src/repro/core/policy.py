"""Data protection policy validation and reporting.

The gateway enforces that every deployed field plan keeps the weakest-link
protection level within the annotated class, and can render the §5.1-style
policy report (annotation, selected tactics, reason) used by the use-case
benchmark and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.registry import TacticRegistry
from repro.core.selection import FieldPlan
from repro.errors import PolicyError
from repro.spi.leakage import LeakageLevel, ProtectionClass, weakest_link


@dataclass(frozen=True)
class FieldPolicyReport:
    field: str
    annotation: str
    tactics: list[str]
    effective_level: LeakageLevel | None
    effective_class: ProtectionClass | None
    reasons: dict[str, str]
    compliant: bool


def audit_plan(plan: FieldPlan, registry: TacticRegistry
               ) -> FieldPolicyReport:
    """Audit one field plan against its annotation."""
    levels = []
    for name in plan.tactic_names:
        descriptor = registry.descriptor(name)
        if descriptor.protection_class is not None:
            levels.append(descriptor.leakage.level)
    effective = weakest_link(levels) if levels else None
    compliant = (
        effective is None
        or plan.annotation.protection_class.tolerates(effective)
    )
    return FieldPolicyReport(
        field=plan.field,
        annotation=plan.annotation.describe(),
        tactics=plan.tactic_names,
        effective_level=effective,
        effective_class=(
            ProtectionClass(int(effective)) if effective else None
        ),
        reasons=plan.reasons,
        compliant=compliant,
    )


def audit_plans(plans: dict[str, FieldPlan], registry: TacticRegistry
                ) -> list[FieldPolicyReport]:
    reports = [audit_plan(plan, registry) for plan in plans.values()]
    violations = [r.field for r in reports if not r.compliant]
    if violations:
        raise PolicyError(
            f"policy violation on fields {violations}: selected tactics "
            f"leak above the annotated class"
        )
    return reports


def render_leakage_matrix(registry: TacticRegistry) -> str:
    """Per-operation leakage matrix (§3.1: leakage is reified *per
    operation*, not just per tactic).

    Rows are tactics, columns the protocol operations; cells show the
    leakage level (1=structure .. 5=order), with ``f`` marking
    forward-private update paths.
    """
    operations = ["insert", "update", "delete", "eq_search",
                  "bool_search", "range_search", "aggregate", "read"]
    header = f"{'tactic':<14}" + "".join(f"{op:<13}" for op in operations)
    lines = ["Per-operation leakage (1=structure .. 5=order, "
             "f=forward private)", header, "-" * len(header)]
    for registration in registry.all():
        descriptor = registration.descriptor
        cells = []
        for operation in operations:
            leakage = descriptor.leakage.for_operation(operation)
            if leakage is None:
                cells.append(f"{'-':<13}")
            else:
                marker = f"{int(leakage.level)}"
                if leakage.forward_private:
                    marker += "f"
                cells.append(f"{marker:<13}")
        lines.append(f"{descriptor.name:<14}" + "".join(cells))
    return "\n".join(lines)


def render_policy_table(reports: list[FieldPolicyReport]) -> str:
    """ASCII rendering of the §5.1 'Sensitives / Tactic Selection / Reason'
    table."""
    rows = [("Sensitives", "Tactic Selection", "Reason")]
    for report in sorted(reports, key=lambda r: r.field):
        reason = "; ".join(
            report.reasons.get(t, "") for t in report.tactics
        ).strip("; ")
        rows.append((report.field, ", ".join(report.tactics), reason))
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if index == 0:
            lines.append("-" * (sum(widths) + 4))
    return "\n".join(lines)
